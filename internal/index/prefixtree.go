package index

import "repro/internal/energy"

// PrefixTree is a path-compressed 16-ary (nibble) trie over the
// order-preserving unsigned image of int64 keys — a simplified cousin of
// the prefix-tree index in QPPT (Kissinger et al., CIDR 2013), the
// paper's reference [15].  Lookups descend at most 16 nibbles; dense key
// sets share prefixes, and range scans walk children in nibble order,
// which is key order.
type PrefixTree struct {
	root *ptNode
	keys int
}

type ptNode struct {
	// Exactly one of (children, leaf) is meaningful: an inner node has
	// children; a compressed leaf stores the full key and postings.
	children *[16]*ptNode
	leafKey  uint64
	post     []int32
	isLeaf   bool
}

// NewPrefixTree returns an empty prefix tree.
func NewPrefixTree() *PrefixTree { return &PrefixTree{} }

// flip maps int64 to uint64 preserving order (sign bit flip).
func flip(k int64) uint64 { return uint64(k) ^ (1 << 63) }

// unflip reverses flip.
func unflip(u uint64) int64 { return int64(u ^ (1 << 63)) }

// nibble returns the d-th nibble from the top (d in [0,15]).
func nibble(u uint64, d int) int { return int(u >> (60 - 4*d) & 0xF) }

// Name implements Index.
func (p *PrefixTree) Name() string { return "prefixtree" }

// Len implements Index.
func (p *PrefixTree) Len() int { return p.keys }

// SupportsRange implements Index.
func (p *PrefixTree) SupportsRange() bool { return true }

// LookupCost implements Index: expected depth grows with key count but is
// bounded by 16; approximate with a shallow average.
func (p *PrefixTree) LookupCost() energy.Counters {
	return energy.Counters{Instructions: 60, CacheMisses: 4}
}

// Insert implements Index.
func (p *PrefixTree) Insert(key int64, row int32) {
	u := flip(key)
	if p.root == nil {
		p.root = &ptNode{isLeaf: true, leafKey: u, post: []int32{row}}
		p.keys++
		return
	}
	n := p.root
	depth := 0
	for {
		if n.isLeaf {
			if n.leafKey == u {
				n.post = append(n.post, row)
				return
			}
			// Split the compressed leaf: push it down until the two keys
			// diverge.
			old := &ptNode{isLeaf: true, leafKey: n.leafKey, post: n.post}
			n.isLeaf = false
			n.post = nil
			n.children = &[16]*ptNode{}
			cur := n
			for d := depth; d < 16; d++ {
				on, nn := nibble(old.leafKey, d), nibble(u, d)
				if on != nn {
					cur.children[on] = old
					cur.children[nn] = &ptNode{isLeaf: true, leafKey: u, post: []int32{row}}
					p.keys++
					return
				}
				next := &ptNode{children: &[16]*ptNode{}}
				cur.children[on] = next
				cur = next
			}
			panic("index: identical keys reached full depth") // unreachable: equal keys handled above
		}
		c := nibble(u, depth)
		if n.children[c] == nil {
			n.children[c] = &ptNode{isLeaf: true, leafKey: u, post: []int32{row}}
			p.keys++
			return
		}
		n = n.children[c]
		depth++
	}
}

// Lookup implements Index.
func (p *PrefixTree) Lookup(key int64) []int32 {
	u := flip(key)
	n := p.root
	depth := 0
	for n != nil {
		if n.isLeaf {
			if n.leafKey == u {
				return n.post
			}
			return nil
		}
		n = n.children[nibble(u, depth)]
		depth++
	}
	return nil
}

// Range implements Index: in-order DFS restricted to [lo, hi], pruning
// subtrees whose key interval (derived from their prefix) misses the
// range.
func (p *PrefixTree) Range(lo, hi int64, fn func(key int64, rows []int32) bool) {
	if p.root == nil || lo > hi {
		return
	}
	ulo, uhi := flip(lo), flip(hi)
	p.walk(p.root, 0, 0, ulo, uhi, fn)
}

// walk visits node n, which decides nibble depth and whose path prefix
// occupies the top 4*depth bits of prefix.  Returns false to stop.
func (p *PrefixTree) walk(n *ptNode, depth int, prefix, ulo, uhi uint64, fn func(int64, []int32) bool) bool {
	if n.isLeaf {
		if n.leafKey >= ulo && n.leafKey <= uhi {
			return fn(unflip(n.leafKey), n.post)
		}
		return true
	}
	shift := uint(60 - 4*depth)
	var low uint64
	if shift < 64 {
		low = (uint64(1) << shift) - 1
	}
	for c := 0; c < 16; c++ {
		child := n.children[c]
		if child == nil {
			continue
		}
		sub := prefix | uint64(c)<<shift
		if sub|low < ulo || sub > uhi {
			continue // subtree interval disjoint from [ulo, uhi]
		}
		if !p.walk(child, depth+1, sub, ulo, uhi, fn) {
			return false
		}
	}
	return true
}
