// Package energy provides the calibrated analytical energy model that the
// whole engine reports into.
//
// The paper (Lehner, DATE 2013) argues that energy efficiency must be a
// first-class optimization goal next to response time and throughput.  A
// physical reproduction would read RAPL or external power meters; this
// package substitutes a deterministic accounting model: operators record
// the work they perform (instructions, DRAM traffic, cache misses, link
// bytes, ...) in a Counters value, and Model converts counters plus the
// schedule (which cores ran at which P-state for how long) into joules and
// simulated seconds.  The constants in DefaultModel follow published
// per-operation energies for commodity 2013-era servers; all experiment
// conclusions depend only on their relative magnitudes.
//
// Counter conventions: the byte counters record PHYSICAL movement — a
// scan over compressed column segments charges BytesReadDRAM for the
// compressed bytes it streams (plus decode Instructions), not for the
// logical width of the data, which is how operating on compressed
// segments shows up as an energy saving (experiment E19).  The tuple
// counters record LOGICAL work — TuplesIn/TuplesOut are storage-format-
// and parallelism-invariant, so identical queries over identical data
// charge identical row counters at any DOP and any storage layout.
package energy

import (
	"fmt"
	"time"
)

// Joules is an amount of energy.
type Joules float64

// Watts is power (joules per second).
type Watts float64

// Hertz is a clock frequency.
type Hertz float64

// String formats a Joules value with an adaptive SI prefix.
func (j Joules) String() string {
	switch {
	case j < 0:
		return "-" + (-j).String()
	case j >= 1:
		return fmt.Sprintf("%.3f J", float64(j))
	case j >= 1e-3:
		return fmt.Sprintf("%.3f mJ", float64(j)*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3f uJ", float64(j)*1e6)
	default:
		return fmt.Sprintf("%.3f nJ", float64(j)*1e9)
	}
}

// String formats a Watts value.
func (w Watts) String() string { return fmt.Sprintf("%.2f W", float64(w)) }

// String formats a frequency in GHz.
func (h Hertz) String() string { return fmt.Sprintf("%.2f GHz", float64(h)/1e9) }

// PState is a voltage/frequency operating point of a core: the frequency it
// runs at and the power it draws while actively executing at that point.
type PState struct {
	Freq   Hertz
	Active Watts
}

// CState is an idle state of a core.  Deeper states draw less power but
// take longer to wake from.
type CState struct {
	Name        string
	Power       Watts
	WakeLatency time.Duration
}

// CoreSpec describes one CPU core: its available P-states (sorted by
// ascending frequency), its idle and parked C-states, and a flat
// instructions-per-cycle estimate used to turn instruction counts into
// time.
type CoreSpec struct {
	PStates []PState
	Idle    CState
	Parked  CState
	Off     CState
	IPC     float64
}

// MaxPState returns the highest-frequency operating point.
func (c CoreSpec) MaxPState() PState { return c.PStates[len(c.PStates)-1] }

// MinPState returns the lowest-frequency operating point.
func (c CoreSpec) MinPState() PState { return c.PStates[0] }

// Model holds the per-unit energy costs and component specifications used
// to account work into joules and simulated time.  All per-unit costs are
// expressed in joules so arithmetic stays in one unit.
type Model struct {
	Core CoreSpec

	// Dynamic per-event energies.
	PerInstr      Joules // energy per retired instruction at max P-state
	PerByteDRAM   Joules // streaming DRAM traffic, per byte
	PerCacheMiss  Joules // full cache-line fetch (latency-bound access)
	PerBranchMiss Joules // pipeline flush
	PerByteLink   Joules // NIC + switch, per byte on the wire
	PerMsgLink    Joules // fixed per-message overhead
	PerByteSSD    Joules
	PerByteHDD    Joules

	// Static power of non-CPU components.
	DRAMStaticPerGB Watts
	HDDIdle         Watts
	SSDIdle         Watts
	LinkIdle        Watts

	// Timing parameters for the simulated-time account.
	DRAMMissLatency time.Duration // latency of one cache-line miss
	MissOverlap     float64       // fraction of miss latency hidden by MLP, in [0,1)
}

// DefaultModel returns the calibrated model used throughout the experiment
// suite.  Constants approximate a 2013-era two-socket Xeon server:
// ~0.4 nJ per instruction, ~60 pJ per streamed DRAM byte, ~12 nJ per
// random cache-line miss, ~8 nJ per network byte, DVFS points between
// 1.2 GHz/6 W and 3.0 GHz/21 W per core.
func DefaultModel() *Model {
	return &Model{
		Core: CoreSpec{
			PStates: []PState{
				{Freq: 1.2e9, Active: 6},
				{Freq: 1.8e9, Active: 9},
				{Freq: 2.4e9, Active: 14},
				{Freq: 3.0e9, Active: 21},
			},
			Idle:   CState{Name: "C1", Power: 1.5, WakeLatency: 2 * time.Microsecond},
			Parked: CState{Name: "C6", Power: 0.3, WakeLatency: 50 * time.Microsecond},
			Off:    CState{Name: "off", Power: 0, WakeLatency: 10 * time.Millisecond},
			IPC:    1.5,
		},
		PerInstr:      0.4e-9,
		PerByteDRAM:   60e-12,
		PerCacheMiss:  12e-9,
		PerBranchMiss: 5e-9,
		PerByteLink:   8e-9,
		PerMsgLink:    2e-6,
		PerByteSSD:    2.5e-9,
		PerByteHDD:    53e-9,

		DRAMStaticPerGB: 0.4,
		HDDIdle:         5,
		SSDIdle:         1.2,
		LinkIdle:        2,

		DRAMMissLatency: 90 * time.Nanosecond,
		MissOverlap:     0.6,
	}
}

// Breakdown splits an energy total by component, so experiments can report
// where the joules went.
type Breakdown struct {
	CPU    Joules // dynamic instruction + branch energy
	DRAM   Joules // dynamic memory traffic
	Link   Joules // network
	Disk   Joules // SSD + HDD traffic
	Static Joules // idle/static power integrated over elapsed time
}

// Total returns the sum of all components.
func (b Breakdown) Total() Joules { return b.CPU + b.DRAM + b.Link + b.Disk + b.Static }

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.CPU += o.CPU
	b.DRAM += o.DRAM
	b.Link += o.Link
	b.Disk += o.Disk
	b.Static += o.Static
}

// String renders the breakdown as a single line.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%v cpu=%v dram=%v link=%v disk=%v static=%v",
		b.Total(), b.CPU, b.DRAM, b.Link, b.Disk, b.Static)
}

// instrScale returns the dynamic-energy scale factor for running at p
// rather than the max P-state.  Dynamic energy scales roughly with V^2 and
// voltage scales roughly linearly with frequency in the DVFS range, so we
// use (f/fmax)^2 clamped below by a leakage floor.
func (m *Model) instrScale(p PState) float64 {
	fmax := float64(m.Core.MaxPState().Freq)
	r := float64(p.Freq) / fmax
	s := r * r
	if s < 0.25 {
		s = 0.25
	}
	return s
}

// DynamicEnergy converts work counters into dynamic (activity-proportional)
// energy, assuming the CPU-bound part ran at P-state p.
func (m *Model) DynamicEnergy(c Counters, p PState) Breakdown {
	s := Joules(m.instrScale(p))
	return Breakdown{
		CPU: s*Joules(c.Instructions)*m.PerInstr +
			Joules(c.BranchMisses)*m.PerBranchMiss,
		DRAM: Joules(c.BytesReadDRAM+c.BytesWrittenDRAM)*m.PerByteDRAM +
			Joules(c.CacheMisses)*m.PerCacheMiss,
		Link: Joules(c.BytesSentLink+c.BytesRecvLink)*m.PerByteLink +
			Joules(c.Messages)*m.PerMsgLink,
		Disk: Joules(c.BytesReadSSD+c.BytesWrittenSSD)*m.PerByteSSD +
			Joules(c.BytesReadHDD+c.BytesWrittenHDD)*m.PerByteHDD,
	}
}

// CPUTime estimates how long the counted work occupies one core at P-state
// p: instruction time plus the non-overlapped part of cache-miss stalls.
func (m *Model) CPUTime(c Counters, p PState) time.Duration {
	if p.Freq <= 0 {
		p = m.Core.MaxPState()
	}
	instrSec := float64(c.Instructions) / (m.Core.IPC * float64(p.Freq))
	missSec := float64(c.CacheMisses) * m.DRAMMissLatency.Seconds() * (1 - m.MissOverlap)
	return time.Duration((instrSec + missSec) * float64(time.Second))
}

// ActiveEnergy returns the energy of running the counted work on one core
// at P-state p: dynamic energy plus the core's active power integrated over
// the computed busy time.  The returned duration is that busy time.
func (m *Model) ActiveEnergy(c Counters, p PState) (time.Duration, Breakdown) {
	d := m.CPUTime(c, p)
	b := m.DynamicEnergy(c, p)
	b.Static += Joules(float64(p.Active) * d.Seconds())
	return d, b
}

// StaticEnergy integrates a constant power draw over a duration.
func StaticEnergy(p Watts, d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// EDP returns the energy-delay product, a standard efficiency figure of
// merit: lower is better.
func EDP(e Joules, d time.Duration) float64 { return float64(e) * d.Seconds() }
