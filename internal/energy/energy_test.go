package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if len(m.Core.PStates) < 2 {
		t.Fatalf("need at least two P-states, got %d", len(m.Core.PStates))
	}
	for i := 1; i < len(m.Core.PStates); i++ {
		lo, hi := m.Core.PStates[i-1], m.Core.PStates[i]
		if hi.Freq <= lo.Freq {
			t.Errorf("P-states not sorted by frequency: %v then %v", lo, hi)
		}
		if hi.Active <= lo.Active {
			t.Errorf("higher frequency must draw more power: %v then %v", lo, hi)
		}
	}
	if m.Core.Idle.Power <= m.Core.Parked.Power {
		t.Errorf("idle power %v should exceed parked power %v", m.Core.Idle.Power, m.Core.Parked.Power)
	}
	if m.PerByteHDD <= m.PerByteSSD {
		t.Errorf("HDD per-byte energy should exceed SSD: %v vs %v", m.PerByteHDD, m.PerByteSSD)
	}
}

func TestCountersAddAndScale(t *testing.T) {
	a := Counters{Instructions: 100, BytesReadDRAM: 1000, CacheMisses: 10}
	b := Counters{Instructions: 50, BytesSentLink: 8, Messages: 1}
	a.Add(b)
	if a.Instructions != 150 || a.BytesSentLink != 8 || a.Messages != 1 {
		t.Fatalf("Add produced %+v", a)
	}
	h := a.Scale(0.5)
	if h.Instructions != 75 || h.BytesReadDRAM != 500 {
		t.Fatalf("Scale(0.5) produced %+v", h)
	}
	if !(Counters{}).IsZero() {
		t.Error("zero counters should report IsZero")
	}
	if a.IsZero() {
		t.Error("nonzero counters must not report IsZero")
	}
}

func TestCountersAddCommutative(t *testing.T) {
	f := func(x, y Counters) bool {
		a, b := x, y
		a.Add(y)
		b.Add(x)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDynamicEnergyMonotoneInWork(t *testing.T) {
	m := DefaultModel()
	p := m.Core.MaxPState()
	small := Counters{Instructions: 1000, BytesReadDRAM: 4096}
	big := Counters{Instructions: 2000, BytesReadDRAM: 8192}
	if m.DynamicEnergy(big, p).Total() <= m.DynamicEnergy(small, p).Total() {
		t.Error("more work must cost more dynamic energy")
	}
}

func TestDVFSTimeEnergyTradeoff(t *testing.T) {
	// Lower frequency: longer busy time, lower dynamic energy per
	// instruction (V^2 scaling).  This is the physical behaviour the
	// scheduler experiments rely on.
	m := DefaultModel()
	c := Counters{Instructions: 3_000_000}
	dLow, eLow := m.ActiveEnergy(c, m.Core.MinPState())
	dHigh, eHigh := m.ActiveEnergy(c, m.Core.MaxPState())
	if dLow <= dHigh {
		t.Errorf("low frequency must be slower: %v vs %v", dLow, dHigh)
	}
	if eLow.CPU >= eHigh.CPU {
		t.Errorf("low frequency must have lower dynamic CPU energy: %v vs %v", eLow.CPU, eHigh.CPU)
	}
}

func TestCPUTimeIncludesMissStalls(t *testing.T) {
	m := DefaultModel()
	p := m.Core.MaxPState()
	noMiss := m.CPUTime(Counters{Instructions: 1_000_000}, p)
	withMiss := m.CPUTime(Counters{Instructions: 1_000_000, CacheMisses: 100_000}, p)
	if withMiss <= noMiss {
		t.Errorf("cache misses must add stall time: %v vs %v", withMiss, noMiss)
	}
}

func TestStaticEnergy(t *testing.T) {
	got := StaticEnergy(10, 2*time.Second)
	if math.Abs(float64(got)-20) > 1e-9 {
		t.Fatalf("10 W for 2 s = 20 J, got %v", got)
	}
}

func TestBreakdownAddTotal(t *testing.T) {
	a := Breakdown{CPU: 1, DRAM: 2, Link: 3, Disk: 4, Static: 5}
	b := Breakdown{CPU: 1}
	a.Add(b)
	if a.Total() != 16 {
		t.Fatalf("total = %v, want 16", a.Total())
	}
}

func TestMeterConcurrentAdd(t *testing.T) {
	var m Meter
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				m.Add(Counters{Instructions: 1})
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := m.Snapshot().Instructions; got != 8000 {
		t.Fatalf("concurrent adds lost updates: got %d want 8000", got)
	}
	if got := m.Reset().Instructions; got != 8000 {
		t.Fatalf("Reset returned %d", got)
	}
	if !m.Snapshot().IsZero() {
		t.Error("meter must be empty after Reset")
	}
}

func TestAccountReport(t *testing.T) {
	m := DefaultModel()
	c := Counters{Instructions: 1_000_000, BytesReadDRAM: 1 << 20}
	r := m.Account(c, 10*time.Millisecond, 2, m.Core.MaxPState(), 64)
	if r.Joules() <= 0 {
		t.Fatal("account must produce positive energy")
	}
	if r.AvgPower() <= 0 {
		t.Fatal("positive elapsed time must give positive average power")
	}
	// Static part must include both core and DRAM background power.
	coreOnly := m.Account(c, 10*time.Millisecond, 2, m.Core.MaxPState(), 0)
	if r.Energy.Static <= coreOnly.Energy.Static {
		t.Error("DRAM background power missing from static account")
	}
}

func TestEDP(t *testing.T) {
	if EDP(2, time.Second) != 2 {
		t.Fatalf("EDP(2 J, 1 s) = %v, want 2", EDP(2, time.Second))
	}
}

func TestJoulesString(t *testing.T) {
	cases := []struct {
		in   Joules
		want string
	}{
		{1.5, "1.500 J"},
		{0.0015, "1.500 mJ"},
		{0.0000015, "1.500 uJ"},
		{0.0000000015, "1.500 nJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}
