package energy

import (
	"sync"
	"testing"
)

// TestFleetMeterBooks pins the two-book contract: attributed counts
// every query, physical counts shared work once, and the saved dynamic
// energy is the priced gap.
func TestFleetMeterBooks(t *testing.T) {
	var f FleetMeter
	w := Counters{Instructions: 1000, BytesReadDRAM: 4096, TuplesOut: 10}
	f.AddQuery(w)       // leader
	f.AddSharedQuery(w) // two riders
	f.AddSharedQuery(w)

	att, phy := f.Attributed(), f.Physical()
	if att != w.Scale(3) {
		t.Fatalf("attributed = %+v, want 3x work", att)
	}
	if phy != w {
		t.Fatalf("physical = %+v, want 1x work", phy)
	}
	total, shared := f.Queries()
	if total != 3 || shared != 2 {
		t.Fatalf("queries = %d/%d, want 3/2", total, shared)
	}
	m := DefaultModel()
	p := m.Core.MaxPState()
	want := m.DynamicEnergy(w.Scale(2), p).Total()
	if got := f.SavedDynamic(m, p); got != want {
		t.Fatalf("saved = %v, want %v", got, want)
	}
}

// TestFleetMeterConcurrent exercises the mutex under -race.
func TestFleetMeterConcurrent(t *testing.T) {
	var f FleetMeter
	w := Counters{Instructions: 7}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if i%2 == 0 {
					f.AddQuery(w)
				} else {
					f.AddSharedQuery(w)
				}
			}
		}(i)
	}
	wg.Wait()
	if att := f.Attributed(); att.Instructions != 8*100*7 {
		t.Fatalf("attributed instructions = %d", att.Instructions)
	}
	if phy := f.Physical(); phy.Instructions != 4*100*7 {
		t.Fatalf("physical instructions = %d", phy.Instructions)
	}
}
