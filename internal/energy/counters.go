package energy

// Counters records the work performed by an operator, a transaction, or a
// whole query.  Every field is a plain count so Counters values can be
// added, subtracted, and scaled without loss.  Operators fill counters as
// they run; Model converts them into joules and time.
type Counters struct {
	Instructions uint64 // retired instructions (estimated per operator)
	TuplesIn     uint64 // tuples consumed
	TuplesOut    uint64 // tuples produced

	BytesReadDRAM    uint64 // streaming reads from memory
	BytesWrittenDRAM uint64 // streaming writes to memory
	CacheMisses      uint64 // latency-bound cache-line fetches (random access)
	BranchMisses     uint64 // mispredicted branches

	BytesSentLink uint64 // bytes shipped over the interconnect
	BytesRecvLink uint64
	Messages      uint64 // discrete messages (per-message overhead)

	BytesReadSSD    uint64
	BytesWrittenSSD uint64
	BytesReadHDD    uint64
	BytesWrittenHDD uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instructions += o.Instructions
	c.TuplesIn += o.TuplesIn
	c.TuplesOut += o.TuplesOut
	c.BytesReadDRAM += o.BytesReadDRAM
	c.BytesWrittenDRAM += o.BytesWrittenDRAM
	c.CacheMisses += o.CacheMisses
	c.BranchMisses += o.BranchMisses
	c.BytesSentLink += o.BytesSentLink
	c.BytesRecvLink += o.BytesRecvLink
	c.Messages += o.Messages
	c.BytesReadSSD += o.BytesReadSSD
	c.BytesWrittenSSD += o.BytesWrittenSSD
	c.BytesReadHDD += o.BytesReadHDD
	c.BytesWrittenHDD += o.BytesWrittenHDD
}

// Scale returns the counters multiplied by factor k (used by the optimizer
// to extrapolate sampled costs).  Counts are rounded toward zero.
func (c Counters) Scale(k float64) Counters {
	s := func(v uint64) uint64 { return uint64(float64(v) * k) }
	return Counters{
		Instructions:     s(c.Instructions),
		TuplesIn:         s(c.TuplesIn),
		TuplesOut:        s(c.TuplesOut),
		BytesReadDRAM:    s(c.BytesReadDRAM),
		BytesWrittenDRAM: s(c.BytesWrittenDRAM),
		CacheMisses:      s(c.CacheMisses),
		BranchMisses:     s(c.BranchMisses),
		BytesSentLink:    s(c.BytesSentLink),
		BytesRecvLink:    s(c.BytesRecvLink),
		Messages:         s(c.Messages),
		BytesReadSSD:     s(c.BytesReadSSD),
		BytesWrittenSSD:  s(c.BytesWrittenSSD),
		BytesReadHDD:     s(c.BytesReadHDD),
		BytesWrittenHDD:  s(c.BytesWrittenHDD),
	}
}

// IsZero reports whether no work has been recorded.
func (c Counters) IsZero() bool { return c == Counters{} }
