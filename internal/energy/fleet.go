package energy

import "sync"

// FleetMeter is the multi-query extension of Meter: it keeps two books
// over the same workload.  The ATTRIBUTED book sums every query's
// standalone work — what each query would have cost run by itself, the
// per-query bill.  The PHYSICAL book sums the work the machine actually
// performed — shared-scan groups charge their streaming once, however
// many queries rode along.  The gap between the books is exactly the
// energy the cross-query scheduler saved by batching; per-query
// attribution stays invariant across core budgets and batching settings
// because it never depends on which group a query landed in.
//
// The zero value is ready to use.  All methods are safe for concurrent
// use.
type FleetMeter struct {
	mu         sync.Mutex
	attributed Counters
	physical   Counters
	queries    int
	shared     int // queries whose physical work was charged by another
}

// AddQuery books one query: c is attributed to the query, and also
// performed physically.  Use for a query that ran alone or led a group.
func (f *FleetMeter) AddQuery(c Counters) {
	f.mu.Lock()
	f.attributed.Add(c)
	f.physical.Add(c)
	f.queries++
	f.mu.Unlock()
}

// AddSharedQuery books a query that rode a shared execution: the work is
// attributed to it, but the machine performed nothing extra.
func (f *FleetMeter) AddSharedQuery(c Counters) {
	f.mu.Lock()
	f.attributed.Add(c)
	f.queries++
	f.shared++
	f.mu.Unlock()
}

// Attributed returns the per-query bill summed over all queries.
func (f *FleetMeter) Attributed() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attributed
}

// Physical returns the work the machine actually performed.
func (f *FleetMeter) Physical() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.physical
}

// Queries returns how many queries were booked; Shared of those rode a
// shared execution.
func (f *FleetMeter) Queries() (total, shared int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queries, f.shared
}

// SavedDynamic prices the gap between the books: the dynamic energy the
// fleet avoided by sharing, at P-state p.
func (f *FleetMeter) SavedDynamic(m *Model, p PState) Joules {
	f.mu.Lock()
	att, phy := f.attributed, f.physical
	f.mu.Unlock()
	return m.DynamicEnergy(att, p).Total() - m.DynamicEnergy(phy, p).Total()
}
