package energy

import (
	"sync"
	"time"
)

// Meter is a thread-safe accumulator of work counters, used as the single
// collection point for a query, a worker, or the whole engine.  The zero
// value is ready to use.
//
// Thread-safety guarantees: Add, Snapshot, and Reset may be called from
// any number of goroutines concurrently; every Add is atomic with respect
// to Snapshot (a snapshot never observes half of an Add), and Reset
// returns exactly the counters accumulated before it, handing each Add to
// either the old or the new accumulation, never both or neither.
//
// Meters are the one concurrency-safe meeting point of the execution
// engine: the workers of a morsel-parallel operator accumulate plain
// Counters values locally (Counters itself is not synchronized) and merge
// them into the query's Meter once per morsel batch — coarse-grained
// merging keeps the mutex out of the per-row hot path.
type Meter struct {
	mu sync.Mutex
	c  Counters
}

// Add accumulates counters into the meter.
func (m *Meter) Add(c Counters) {
	m.mu.Lock()
	m.c.Add(c)
	m.mu.Unlock()
}

// Snapshot returns the counters accumulated so far.
func (m *Meter) Snapshot() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c
}

// Reset clears the meter and returns what it held.
func (m *Meter) Reset() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.c
	m.c = Counters{}
	return c
}

// Report summarizes one measured activity: the work it performed, the time
// it took (simulated or measured), and the energy breakdown the model
// assigns to it.
type Report struct {
	Work    Counters
	Elapsed time.Duration
	Energy  Breakdown
}

// Joules returns the total energy of the report.
func (r Report) Joules() Joules { return r.Energy.Total() }

// AvgPower returns the mean power over the report's elapsed time.
func (r Report) AvgPower() Watts {
	if r.Elapsed <= 0 {
		return 0
	}
	return Watts(float64(r.Energy.Total()) / r.Elapsed.Seconds())
}

// Account builds a Report for counted work running on n cores at P-state p
// for the given wall-clock duration.  Dynamic energy comes from the
// counters; static energy integrates the active-core power plus DRAM
// background power for memGB gigabytes over the duration.
func (m *Model) Account(c Counters, elapsed time.Duration, n int, p PState, memGB float64) Report {
	b := m.DynamicEnergy(c, p)
	b.Static += Joules(float64(p.Active)*float64(n)*elapsed.Seconds()) +
		Joules(float64(m.DRAMStaticPerGB)*memGB*elapsed.Seconds())
	return Report{Work: c, Elapsed: elapsed, Energy: b}
}
