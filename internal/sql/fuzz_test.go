package sql

import (
	"reflect"
	"testing"
)

// seedQueries are the E-series experiment query shapes (point
// aggregations, shared-scan lookalikes, join + group + order + limit
// pipelines) plus literal edge forms; they seed both fuzz targets and
// the committed corpus under testdata/fuzz.
var seedQueries = []string{
	"SELECT COUNT(*), SUM(amount) FROM orders WHERE custkey = 7",
	"SELECT * FROM orders",
	"SELECT * FROM orders WHERE custkey = 42 LIMIT 10",
	"SELECT region, SUM(amount) AS rev, COUNT(*) AS n FROM orders JOIN customer ON orders.custkey = customer.ckey WHERE amount > 10.5 AND region = 'ASIA' GROUP BY region ORDER BY rev DESC, region LIMIT 7",
	"SELECT MIN(amount), MAX(amount), AVG(amount) FROM orders WHERE amount >= 1e+10",
	"SELECT id FROM orders WHERE amount <> -0.5 ORDER BY id ASC LIMIT 3",
	"SELECT custkey FROM orders WHERE amount <= 2.5e-3 AND id != -3",
	"select count(*) from lineitem where qty < 5.0",
	"SELECT a AS b FROM t WHERE s = '' ;",
	"SELECT",
	"SELECT * FROM t WHERE a = 1e999",
	"SELECT * FROM t LIMIT -1",
}

// seedDML covers the write grammar: multi-tuple inserts with and without
// column lists, negative and float literals, updates with multi-column
// SET, deletes with and without WHERE, and malformed edges.
var seedDML = []string{
	"INSERT INTO orders (id, custkey, amount, region) VALUES (1, 7, 10.5, 'ASIA')",
	"INSERT INTO t VALUES (1, -2, 3.5), (4, 5, -6.0)",
	"insert into t (a) values (''), ('x')",
	"UPDATE orders SET amount = 99.5, region = 'EU' WHERE custkey = 7 AND amount > 10.5",
	"UPDATE t SET a = -1",
	"DELETE FROM orders WHERE region = 'ASIA' AND amount <= 2.5e-3",
	"DELETE FROM t",
	"INSERT INTO t VALUES",
	"UPDATE t WHERE a = 1",
	"DELETE t WHERE a = 1",
	"INSERT INTO t (a, b) VALUES (1)",
}

// FuzzParse is the wire-input safety contract: Parse and ParseStmt must
// return an error, never panic, on arbitrary bytes (the serving front
// end feeds them untrusted HTTP request bodies), and any statement they
// do accept must render back to text without panicking.
func FuzzParse(f *testing.F) {
	for _, s := range seedQueries {
		f.Add(s)
	}
	for _, s := range seedDML {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if q, err := Parse(input); err == nil {
			_ = q.String()
		}
		if s, err := ParseStmt(input); err == nil {
			_ = s.String()
		}
	})
}

// FuzzRoundTrip pins the canonical-form property the plan cache and
// shared-scan signatures rely on: for any input that parses, the
// rendered canonical text must reparse to the same logical query, and
// rendering must be a fixed point (canonical text of the reparse is
// byte-identical).
func FuzzRoundTrip(f *testing.F) {
	for _, s := range seedQueries {
		f.Add(s)
	}
	for _, s := range seedDML {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s1, err := ParseStmt(input)
		if err != nil {
			return
		}
		canon := s1.String()
		s2, err := ParseStmt(canon)
		if err != nil {
			t.Fatalf("canonical text %q of accepted input %q does not reparse: %v", canon, input, err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("round trip changed the statement for input %q:\n in: %#v\nout: %#v\nsql: %s", input, s1, s2, canon)
		}
		if again := s2.String(); again != canon {
			t.Fatalf("canonical text is not a fixed point: %q reparses to %q", canon, again)
		}
	})
}
