package sql

import (
	"reflect"
	"testing"

	"repro/internal/expr"
	"repro/internal/opt"
	"repro/internal/vec"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse("SELECT id, amount FROM orders WHERE custkey < 10 AND region = 'ASIA' LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "orders" || q.LimitN != 5 {
		t.Fatalf("basic fields wrong: %+v", q)
	}
	wantSel := []opt.SelectItem{{Col: "id"}, {Col: "amount"}}
	if !reflect.DeepEqual(q.Select, wantSel) {
		t.Fatalf("select = %+v", q.Select)
	}
	wantPreds := []expr.Pred{
		{Col: "custkey", Op: vec.LT, Val: expr.IntVal(10)},
		{Col: "region", Op: vec.EQ, Val: expr.StrVal("ASIA")},
	}
	if !reflect.DeepEqual(q.Preds, wantPreds) {
		t.Fatalf("preds = %+v", q.Preds)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 0 {
		t.Fatal("SELECT * must produce an empty select list")
	}
}

func TestParseAggregatesGroupOrder(t *testing.T) {
	q, err := Parse(`SELECT region, SUM(amount) AS rev, COUNT(*) AS n, AVG(amount)
		FROM orders GROUP BY region ORDER BY rev DESC, region ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 4 {
		t.Fatalf("select list = %+v", q.Select)
	}
	if q.Select[1].Agg != expr.AggSum || q.Select[1].As != "rev" {
		t.Fatalf("sum item = %+v", q.Select[1])
	}
	if q.Select[2].Agg != expr.AggCount || q.Select[2].Col != "" {
		t.Fatalf("count item = %+v", q.Select[2])
	}
	if q.Select[3].Agg != expr.AggAvg || q.Select[3].Col != "amount" {
		t.Fatalf("avg item = %+v", q.Select[3])
	}
	if !reflect.DeepEqual(q.GroupBy, []string{"region"}) {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	want := []expr.SortKey{{Col: "rev", Desc: true}, {Col: "region"}}
	if !reflect.DeepEqual(q.OrderBy, want) {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
}

func TestParseJoin(t *testing.T) {
	q, err := Parse("SELECT segment FROM orders JOIN customer ON orders.custkey = customer.ckey WHERE amount >= 100.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %+v", q.Joins)
	}
	j := q.Joins[0]
	if j.Table != "customer" || j.LeftCol != "custkey" || j.RightCol != "ckey" {
		t.Fatalf("join = %+v", j)
	}
	if q.Preds[0].Val.Kind.String() != "DOUBLE" || q.Preds[0].Val.F != 100.5 {
		t.Fatalf("float literal mishandled: %+v", q.Preds[0])
	}
}

func TestParseNegativeNumbersAndOps(t *testing.T) {
	q, err := Parse("SELECT a FROM t WHERE a >= -5 AND b <> -1.5 AND c != 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Val.I != -5 {
		t.Fatalf("negative int literal = %+v", q.Preds[0].Val)
	}
	if q.Preds[1].Op != vec.NE || q.Preds[1].Val.F != -1.5 {
		t.Fatalf("NE float literal = %+v", q.Preds[1])
	}
	if q.Preds[2].Op != vec.NE {
		t.Fatalf("!= operator = %+v", q.Preds[2])
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Fatal(err)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select A from T where A = 1 group by A order by A limit 1")
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "T" || len(q.GroupBy) != 1 || q.LimitN != 1 {
		t.Fatalf("lowercase keywords mishandled: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a <",
		"SELECT a FROM t WHERE a < 'x",   // unterminated string
		"SELECT a FROM t WHERE a ~ 3",    // bad operator
		"SELECT SUM(*) FROM t",           // SUM(*) invalid
		"SELECT a FROM t LIMIT x",        // non-numeric limit
		"SELECT a FROM t JOIN u ON a = ", // incomplete join
		"SELECT a FROM t extra",          // trailing tokens
		"SELECT a FROM t GROUP region",   // missing BY
		"SELECT a, FROM t",               // dangling comma
		"SELECT count(a FROM t",          // missing paren
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("expected parse error for %q", s)
		}
	}
}

func TestLexerOffsets(t *testing.T) {
	toks, err := lex("a <= 'xy'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "a" || toks[1].text != "<=" || toks[2].text != "xy" {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[3].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
}
