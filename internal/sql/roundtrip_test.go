package sql

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/opt"
	"repro/internal/vec"
)

// TestQueryStringRoundTrip: rendering a logical query to SQL and parsing
// it back yields the same logical query.  This pins the two language
// fronts (builder and SQL) to one canonical textual form.
func TestQueryStringRoundTrip(t *testing.T) {
	cases := []*opt.Query{
		{From: "t"},
		{From: "t", Select: []opt.SelectItem{{Col: "a"}, {Col: "b", As: "bb"}}},
		{
			From:  "orders",
			Joins: []opt.JoinSpec{{Table: "customer", LeftCol: "custkey", RightCol: "ckey"}},
			Preds: []expr.Pred{
				{Col: "amount", Op: vec.GT, Val: expr.FloatVal(10.5)},
				{Col: "region", Op: vec.EQ, Val: expr.StrVal("ASIA")},
				{Col: "id", Op: vec.NE, Val: expr.IntVal(-3)},
			},
			Select: []opt.SelectItem{
				{Col: "region"},
				{Agg: expr.AggSum, Col: "amount", As: "rev"},
				{Agg: expr.AggCount, As: "n"},
			},
			GroupBy: []string{"region"},
			OrderBy: []expr.SortKey{{Col: "rev", Desc: true}, {Col: "region"}},
			LimitN:  7,
		},
	}
	for _, q := range cases {
		text := q.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		if !reflect.DeepEqual(back, q) {
			t.Fatalf("round trip changed the query:\n in: %#v\nout: %#v\nsql: %s", q, back, text)
		}
	}
}

// TestQueryStringRoundTripProperty fuzzes structurally valid queries.
func TestQueryStringRoundTripProperty(t *testing.T) {
	ops := []vec.CmpOp{vec.LT, vec.LE, vec.GT, vec.GE, vec.EQ, vec.NE}
	cols := []string{"a", "b", "c", "d"}
	f := func(nPred, nSel uint8, opPick uint8, c int64, desc bool, limit uint8) bool {
		q := &opt.Query{From: "t", LimitN: int(limit % 20)}
		for i := 0; i < int(nPred%4); i++ {
			q.Preds = append(q.Preds, expr.Pred{
				Col: cols[(int(opPick)+i)%len(cols)],
				Op:  ops[(int(opPick)+i)%len(ops)],
				Val: expr.IntVal(c % 1000),
			})
		}
		for i := 0; i < int(nSel%3); i++ {
			q.Select = append(q.Select, opt.SelectItem{Col: cols[i]})
		}
		if nSel%2 == 0 && len(q.Select) > 0 {
			q.OrderBy = []expr.SortKey{{Col: q.Select[0].Col, Desc: desc}}
		}
		back, err := Parse(q.String())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
