package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/opt"
)

// DML grammar: the write half of the SQL front.  ParseStmt accepts both
// halves — SELECT into opt.Query, INSERT/UPDATE/DELETE into opt.DML —
// with the same canonical round-trip property the read side pins: any
// accepted statement renders (Stmt.String) to text that reparses to the
// same logical statement.

// Stmt is one parsed statement: exactly one of Query or DML is set.
type Stmt struct {
	Query *opt.Query
	DML   *opt.DML
}

// String renders the statement in canonical form.
func (s Stmt) String() string {
	if s.Query != nil {
		return s.Query.String()
	}
	if s.DML != nil {
		return s.DML.String()
	}
	return ""
}

// ParseStmt parses a single SQL statement of either kind.
func ParseStmt(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return Stmt{}, err
	}
	p := &parser{toks: toks}
	t := p.peek()
	if t.kind != tokIdent {
		return Stmt{}, fmt.Errorf("sql: expected a statement, found %q", t.text)
	}
	var s Stmt
	switch strings.ToLower(t.text) {
	case "select":
		q, err := p.parseQuery()
		if err != nil {
			return Stmt{}, err
		}
		s.Query = q
	case "insert":
		d, err := p.parseInsert()
		if err != nil {
			return Stmt{}, err
		}
		s.DML = d
	case "update":
		d, err := p.parseUpdate()
		if err != nil {
			return Stmt{}, err
		}
		s.DML = d
	case "delete":
		d, err := p.parseDelete()
		if err != nil {
			return Stmt{}, err
		}
		s.DML = d
	default:
		return Stmt{}, fmt.Errorf("sql: expected SELECT, INSERT, UPDATE, or DELETE, found %q", t.text)
	}
	if !p.atEOF() {
		return Stmt{}, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return s, nil
}

// parseInsert: INSERT INTO table [(col, ...)] VALUES (lit, ...), ...
func (p *parser) parseInsert() (*opt.DML, error) {
	p.matchKw("insert")
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &opt.DML{Kind: opt.DMLInsert, Table: table}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.i++
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.Cols = append(d.Cols, col)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.i++
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []expr.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.i++
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		if len(d.Cols) > 0 && len(row) != len(d.Cols) {
			return nil, fmt.Errorf("sql: INSERT tuple has %d values for %d columns", len(row), len(d.Cols))
		}
		d.Rows = append(d.Rows, row)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.i++
			continue
		}
		break
	}
	return d, nil
}

// parseUpdate: UPDATE table SET col = lit, ... [WHERE preds]
func (p *parser) parseUpdate() (*opt.DML, error) {
	p.matchKw("update")
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &opt.DML{Kind: opt.DMLUpdate, Table: table}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		d.Sets = append(d.Sets, opt.SetClause{Col: stripQual(col), Val: v})
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.i++
			continue
		}
		break
	}
	if d.Preds, err = p.parseWhere(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseDelete: DELETE FROM table [WHERE preds]
func (p *parser) parseDelete() (*opt.DML, error) {
	p.matchKw("delete")
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &opt.DML{Kind: opt.DMLDelete, Table: table}
	if d.Preds, err = p.parseWhere(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseWhere consumes an optional WHERE conjunction.
func (p *parser) parseWhere() ([]expr.Pred, error) {
	if !p.matchKw("where") {
		return nil, nil
	}
	var preds []expr.Pred
	for {
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.matchKw("and") {
			break
		}
	}
	return preds, nil
}

// parseLiteral consumes one typed literal (the same number/string forms
// predicates accept).
func (p *parser) parseLiteral() (expr.Value, error) {
	v := p.next()
	switch v.kind {
	case tokNumber:
		if strings.ContainsAny(v.text, ".eE") {
			f, err := strconv.ParseFloat(v.text, 64)
			if err != nil {
				return expr.Value{}, fmt.Errorf("sql: bad number %q", v.text)
			}
			return expr.FloatVal(f), nil
		}
		n, err := strconv.ParseInt(v.text, 10, 64)
		if err != nil {
			return expr.Value{}, fmt.Errorf("sql: bad number %q", v.text)
		}
		return expr.IntVal(n), nil
	case tokString:
		return expr.StrVal(v.text), nil
	}
	return expr.Value{}, fmt.Errorf("sql: expected literal, found %q", v.text)
}
