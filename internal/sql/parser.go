package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/opt"
	"repro/internal/vec"
)

// Parse turns a SQL text into the shared logical query form.
func Parse(input string) (*opt.Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if p.toks[p.i].kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) atEOF() bool {
	// A trailing semicolon is allowed.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.i++
	}
	return p.peek().kind == tokEOF
}

// matchKw consumes the given keyword (case-insensitive) if present.
func (p *parser) matchKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.i++
		return nil
	}
	return fmt.Errorf("sql: expected %q, found %q", s, t.text)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %q", t.text)
	}
	p.i++
	return t.text, nil
}

var aggNames = map[string]expr.AggFunc{
	"count": expr.AggCount,
	"sum":   expr.AggSum,
	"min":   expr.AggMin,
	"max":   expr.AggMax,
	"avg":   expr.AggAvg,
}

func (p *parser) parseQuery() (*opt.Query, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	q := &opt.Query{}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.From = from
	for p.matchKw("join") {
		j, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, j)
	}
	if p.matchKw("where") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.matchKw("and") {
				break
			}
		}
	}
	if p.matchKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.i++
				continue
			}
			break
		}
	}
	if p.matchKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			key := expr.SortKey{Col: col}
			if p.matchKw("desc") {
				key.Desc = true
			} else {
				p.matchKw("asc")
			}
			q.OrderBy = append(q.OrderBy, key)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.i++
				continue
			}
			break
		}
	}
	if p.matchKw("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number, found %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		q.LimitN = n
	}
	return q, nil
}

func (p *parser) parseSelectList(q *opt.Query) error {
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.i++ // SELECT * = empty select list (all columns)
		return nil
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.i++
			continue
		}
		return nil
	}
}

func (p *parser) parseSelectItem() (opt.SelectItem, error) {
	name, err := p.ident()
	if err != nil {
		return opt.SelectItem{}, err
	}
	item := opt.SelectItem{Col: name}
	if f, ok := aggNames[strings.ToLower(name)]; ok && p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.i++
		item = opt.SelectItem{Agg: f}
		if p.peek().kind == tokSymbol && p.peek().text == "*" {
			if f != expr.AggCount {
				return item, fmt.Errorf("sql: %s(*) is only valid for COUNT", strings.ToUpper(name))
			}
			p.i++
		} else {
			col, err := p.ident()
			if err != nil {
				return item, err
			}
			item.Col = col
		}
		if err := p.expectSym(")"); err != nil {
			return item, err
		}
	}
	if p.matchKw("as") {
		as, err := p.ident()
		if err != nil {
			return item, err
		}
		item.As = as
	}
	return item, nil
}

func (p *parser) parseJoin() (opt.JoinSpec, error) {
	table, err := p.ident()
	if err != nil {
		return opt.JoinSpec{}, err
	}
	if err := p.expectKw("on"); err != nil {
		return opt.JoinSpec{}, err
	}
	left, err := p.ident()
	if err != nil {
		return opt.JoinSpec{}, err
	}
	if err := p.expectSym("="); err != nil {
		return opt.JoinSpec{}, err
	}
	right, err := p.ident()
	if err != nil {
		return opt.JoinSpec{}, err
	}
	return opt.JoinSpec{Table: table, LeftCol: stripQual(left), RightCol: stripQual(right)}, nil
}

var opNames = map[string]vec.CmpOp{
	"=": vec.EQ, "<>": vec.NE, "!=": vec.NE,
	"<": vec.LT, "<=": vec.LE, ">": vec.GT, ">=": vec.GE,
}

func (p *parser) parsePred() (expr.Pred, error) {
	col, err := p.ident()
	if err != nil {
		return expr.Pred{}, err
	}
	t := p.next()
	op, ok := opNames[t.text]
	if t.kind != tokSymbol || !ok {
		return expr.Pred{}, fmt.Errorf("sql: expected comparison operator, found %q", t.text)
	}
	v := p.next()
	pred := expr.Pred{Col: stripQual(col), Op: op}
	switch v.kind {
	case tokNumber:
		if strings.ContainsAny(v.text, ".eE") {
			f, err := strconv.ParseFloat(v.text, 64)
			if err != nil {
				return pred, fmt.Errorf("sql: bad number %q", v.text)
			}
			pred.Val = expr.FloatVal(f)
		} else {
			n, err := strconv.ParseInt(v.text, 10, 64)
			if err != nil {
				return pred, fmt.Errorf("sql: bad number %q", v.text)
			}
			pred.Val = expr.IntVal(n)
		}
	case tokString:
		pred.Val = expr.StrVal(v.text)
	default:
		return pred, fmt.Errorf("sql: expected literal, found %q", v.text)
	}
	return pred, nil
}

// stripQual removes a table qualifier ("orders.custkey" -> "custkey");
// the planner resolves ownership by schema membership.  A trailing dot
// ("a.") is left alone: stripping it would yield an empty name, which
// renders as canonical text that cannot reparse (fuzz-found).
func stripQual(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 && i+1 < len(name) {
		return name[i+1:]
	}
	return name
}
