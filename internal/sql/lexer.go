// Package sql is the declarative half of the paper's "hybrid query
// language" (§II): a compact SQL subset — SELECT with aggregates, JOIN,
// WHERE conjunctions, GROUP BY, ORDER BY, LIMIT — parsed into the same
// logical opt.Query that the procedural builder produces, so both fronts
// share one optimizer and executor (experiment E14 verifies the plans are
// identical).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits input into tokens.  Keywords stay tokIdent; the parser
// matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' && expectsValue(toks)):
			j := i + 1
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			// Optional exponent [eE][+-]?digits, consumed only when its
			// digits are really there: "5e3" is one number, "5e" stays a
			// number followed by an identifier.  Canonical float rendering
			// (strconv 'g') emits forms like 1e+10, so the lexer must read
			// them back.
			if j < n && (input[j] == 'e' || input[j] == 'E') {
				k := j + 1
				if k < n && (input[k] == '+' || input[k] == '-') {
					k++
				}
				if k < n && input[k] >= '0' && input[k] <= '9' {
					for k < n && input[k] >= '0' && input[k] <= '9' {
						k++
					}
					j = k
				}
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		default:
			// Multi-char operators first.
			for _, op := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(input[i:], op) {
					toks = append(toks, token{kind: tokSymbol, text: op, pos: i})
					i += len(op)
					goto next
				}
			}
			switch c {
			case ',', '(', ')', '*', '=', '<', '>', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// expectsValue reports whether a '-' at the current position begins a
// negative literal (after an operator) rather than anything else.
func expectsValue(toks []token) bool {
	if len(toks) == 0 {
		return false
	}
	last := toks[len(toks)-1]
	return last.kind == tokSymbol && last.text != ")"
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
