package sql

import (
	"reflect"
	"testing"

	"repro/internal/expr"
	"repro/internal/opt"
	"repro/internal/vec"
)

// TestDMLStringRoundTrip pins the canonical textual form of the write
// grammar: rendering a logical DML statement and parsing it back yields
// the same statement.
func TestDMLStringRoundTrip(t *testing.T) {
	cases := []*opt.DML{
		{
			Kind: opt.DMLInsert, Table: "orders",
			Rows: [][]expr.Value{{expr.IntVal(1), expr.FloatVal(10.5), expr.StrVal("ASIA")}},
		},
		{
			Kind: opt.DMLInsert, Table: "orders",
			Cols: []string{"id", "amount"},
			Rows: [][]expr.Value{
				{expr.IntVal(-3), expr.FloatVal(2)},
				{expr.IntVal(4), expr.FloatVal(-0.5)},
			},
		},
		{
			Kind: opt.DMLUpdate, Table: "orders",
			Sets: []opt.SetClause{
				{Col: "amount", Val: expr.FloatVal(99.5)},
				{Col: "region", Val: expr.StrVal("EU")},
			},
			Preds: []expr.Pred{
				{Col: "custkey", Op: vec.EQ, Val: expr.IntVal(7)},
				{Col: "amount", Op: vec.GT, Val: expr.FloatVal(10.5)},
			},
		},
		{
			Kind: opt.DMLUpdate, Table: "t",
			Sets: []opt.SetClause{{Col: "a", Val: expr.IntVal(-1)}},
		},
		{
			Kind: opt.DMLDelete, Table: "orders",
			Preds: []expr.Pred{{Col: "region", Op: vec.NE, Val: expr.StrVal("ASIA")}},
		},
		{Kind: opt.DMLDelete, Table: "t"},
	}
	for _, d := range cases {
		text := d.String()
		back, err := ParseStmt(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		if back.DML == nil {
			t.Fatalf("reparse %q: not a DML statement", text)
		}
		if !reflect.DeepEqual(back.DML, d) {
			t.Fatalf("round trip changed the statement:\n in: %#v\nout: %#v\nsql: %s", d, back.DML, text)
		}
		if again := back.DML.String(); again != text {
			t.Fatalf("canonical text is not a fixed point: %q vs %q", text, again)
		}
	}
}

// TestParseStmtDispatch: ParseStmt routes SELECT to the read grammar and
// the write verbs to the DML grammar.
func TestParseStmtDispatch(t *testing.T) {
	s, err := ParseStmt("SELECT COUNT(*) FROM orders WHERE custkey = 7")
	if err != nil {
		t.Fatal(err)
	}
	if s.Query == nil || s.DML != nil {
		t.Fatalf("SELECT did not dispatch to the read grammar: %#v", s)
	}
	s, err = ParseStmt("insert into t values (1)")
	if err != nil {
		t.Fatal(err)
	}
	if s.DML == nil || s.DML.Kind != opt.DMLInsert {
		t.Fatalf("INSERT did not dispatch to the write grammar: %#v", s)
	}
}

// TestParseStmtErrors: malformed write statements fail with errors, not
// panics, and nothing parses past trailing garbage.
func TestParseStmtErrors(t *testing.T) {
	bad := []string{
		"",
		"42",
		"DROP TABLE t",
		"INSERT INTO t",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES ()",
		"INSERT INTO t (a, b) VALUES (1)",
		"INSERT INTO t (a,) VALUES (1)",
		"INSERT t VALUES (1)",
		"UPDATE t SET",
		"UPDATE t SET a",
		"UPDATE t SET a = ",
		"UPDATE t WHERE a = 1",
		"DELETE t",
		"DELETE FROM t WHERE",
		"DELETE FROM t WHERE a = 1 extra",
		"INSERT INTO t VALUES (1) SELECT",
		"UPDATE t SET a = b",
	}
	for _, in := range bad {
		if _, err := ParseStmt(in); err == nil {
			t.Errorf("ParseStmt(%q) unexpectedly succeeded", in)
		}
	}
}
