package xpu

import (
	"testing"

	"repro/internal/energy"
)

func TestSimpleScansStayOnCPU(t *testing.T) {
	// The paper: "only a limited number of operators show significant
	// benefit when running on non-CPU hardware platforms."  A plain
	// streaming predicate (3 ops/value) is PCIe-bound and must stay put
	// at every size.
	m := energy.DefaultModel()
	gpu := DefaultGPU()
	for _, n := range []int{1e3, 1e6, 1e8} {
		p, cpu, dev := Decide(m, gpu, Profile{N: n, ValBytes: 8, OpsPerValue: 3}, MinTime)
		if p != OnCPU {
			t.Errorf("simple scan of %g values offloaded (cpu=%v dev=%v)", float64(n), cpu.Time, dev.Time)
		}
	}
}

func TestComputeDenseOperatorsOffload(t *testing.T) {
	// Compute-dense operators (frequent-itemset style, paper ref [8])
	// amortize the transfer: large inputs must offload under min-time.
	m := energy.DefaultModel()
	gpu := DefaultGPU()
	prof := func(n int) Profile { return Profile{N: n, ValBytes: 8, OpsPerValue: 64} }
	small, _, _ := Decide(m, gpu, prof(1_000), MinTime)
	if small != OnCPU {
		t.Error("tiny input must not pay the launch+transfer overhead")
	}
	big, cpu, dev := Decide(m, gpu, prof(20_000_000), MinTime)
	if big != OnDevice {
		t.Errorf("20M compute-dense values must offload: cpu=%v dev=%v", cpu.Time, dev.Time)
	}
	// Monotone crossover in input size.
	prev := OnCPU
	flips := 0
	for _, n := range []int{1e3, 1e4, 1e5, 1e6, 1e7, 2e7, 1e8} {
		p, _, _ := Decide(m, gpu, prof(int(n)), MinTime)
		if p != prev {
			flips++
			prev = p
		}
	}
	if flips != 1 {
		t.Errorf("placement must flip exactly once across sizes, flipped %d times", flips)
	}
}

func TestCrossoverInComputeIntensity(t *testing.T) {
	// At fixed size, sweeping ops/value must flip the decision once:
	// the paper's call to "look into more complex and non-traditional
	// database operators".
	m := energy.DefaultModel()
	gpu := DefaultGPU()
	prev := OnCPU
	flips := 0
	for _, ops := range []int{1, 3, 8, 16, 32, 64, 128} {
		p, _, _ := Decide(m, gpu, Profile{N: 10_000_000, ValBytes: 8, OpsPerValue: ops}, MinTime)
		if p != prev {
			flips++
			prev = p
		}
	}
	if flips != 1 || prev != OnDevice {
		t.Errorf("intensity sweep must flip once to the device, flips=%d final=%v", flips, prev)
	}
}

func TestEnergyObjectiveFavorsFPGA(t *testing.T) {
	// The FPGA is slower than the GPU but far more frugal; it must win
	// offloads under min-energy where the GPU loses them.
	m := energy.DefaultModel()
	prof := Profile{N: 20_000_000, ValBytes: 8, OpsPerValue: 64}
	_, _, gpuCost := Decide(m, DefaultGPU(), prof, MinEnergy)
	_, _, fpgaCost := Decide(m, DefaultFPGA(), prof, MinEnergy)
	if fpgaCost.Energy >= gpuCost.Energy {
		t.Errorf("FPGA must be more frugal: %v vs %v", fpgaCost.Energy, gpuCost.Energy)
	}
	place, cpu, dev := Decide(m, DefaultFPGA(), prof, MinEnergy)
	if place != OnDevice {
		t.Errorf("compute-dense work must offload to FPGA under min-energy: cpu=%v dev=%v",
			cpu.Energy, dev.Energy)
	}
}

func TestObjectivesCanDisagree(t *testing.T) {
	// The GPU is fast but hungry: there must be profiles where min-time
	// offloads and min-energy does not — objective changes placement.
	m := energy.DefaultModel()
	gpu := DefaultGPU()
	disagree := false
	for _, ops := range []int{16, 32, 64, 128, 256} {
		for _, n := range []int{1e6, 1e7, 1e8} {
			prof := Profile{N: int(n), ValBytes: 8, OpsPerValue: ops}
			pt, _, _ := Decide(m, gpu, prof, MinTime)
			pe, _, _ := Decide(m, gpu, prof, MinEnergy)
			if pt != pe {
				disagree = true
			}
		}
	}
	if !disagree {
		t.Error("expected at least one profile where the objectives disagree")
	}
}

func TestHybridOpPhases(t *testing.T) {
	m := energy.DefaultModel()
	gpu := DefaultGPU()
	h := &HybridOp{
		Name:      "itemset-mine",
		Work:      Profile{N: 30_000_000, ValBytes: 8, OpsPerValue: 64},
		InitWork:  energy.Counters{Instructions: 100_000},
		FinishOut: energy.Counters{Instructions: 500_000, BytesWrittenDRAM: 1 << 20},
	}
	plan := h.Plan(m, gpu, MinTime)
	if plan.Placement != OnDevice {
		t.Fatalf("compute-dense work phase should offload, got %v", plan.Placement)
	}
	if plan.Init.Time <= 0 || plan.Finish.Time <= 0 {
		t.Error("init/finish phases must run (on the CPU) and cost time")
	}
	tot := plan.Total()
	if tot.Time != plan.Init.Time+plan.WorkCost.Time+plan.Finish.Time {
		t.Error("total must sum sequential phases")
	}
	if tot.Energy <= plan.WorkCost.Energy {
		t.Error("total energy must include CPU phases")
	}
	// The same operator on a tiny input keeps everything on the CPU.
	h.Work.N = 1000
	if p := h.Plan(m, gpu, MinTime); p.Placement != OnCPU {
		t.Error("tiny hybrid op must stay on CPU")
	}
}

func TestDeviceWorkScalesWithInput(t *testing.T) {
	gpu := DefaultGPU()
	small := gpu.DeviceWork(Profile{N: 1_000_000, ValBytes: 8, OpsPerValue: 8})
	large := gpu.DeviceWork(Profile{N: 10_000_000, ValBytes: 8, OpsPerValue: 8})
	if large.Time <= small.Time || large.Energy <= small.Energy {
		t.Error("device cost must grow with input")
	}
}

func TestStrings(t *testing.T) {
	if OnCPU.String() != "cpu" || OnDevice.String() != "device" {
		t.Fatal("placement names wrong")
	}
	if Init.String() != "init" || Work.String() != "work" || Finish.String() != "finish" {
		t.Fatal("phase names wrong")
	}
}
