// Package xpu simulates the co-processor support of §III ("comprehensive
// xPU and co-processor support") and the hybrid operators of §IV.B:
// "while init() and finish()-phases of operators may run on a CPU side,
// the actual work()-part of an operator may be scheduled on a GPU
// platform".
//
// The model reproduces the paper's observation that "as of now, only a
// limited number of operators show significant benefit when running on
// non-CPU hardware platforms": an operator is characterized by its
// compute intensity (ALU operations per value).  Simple streaming
// predicates are PCIe-transfer-bound and never leave the CPU; only
// compute-dense operators (frequent-itemset mining in the paper's
// reference [8], complex expressions, probabilistic operators) amortize
// the transfer and launch overheads.  HybridOp splits an operator into
// Init/Work/Finish phases and places the Work phase per decision.
package xpu

import (
	"fmt"
	"time"

	"repro/internal/energy"
)

// Device models one accelerator.
type Device struct {
	Name          string
	H2D           float64       // host-to-device bytes/s
	D2H           float64       // device-to-host bytes/s
	LaunchLatency time.Duration // fixed kernel-launch cost
	OpsPerSec     float64       // aggregate ALU throughput
	MemBandwidth  float64       // device memory bytes/s
	Active        energy.Watts  // power while a kernel runs
	Idle          energy.Watts  // power while powered but idle
}

// DefaultGPU returns a 2013-era discrete GPU profile: PCIe-3-ish link
// (~12 GB/s), ~20 µs launch, ~1 Tops ALU throughput, ~180 GB/s memory.
func DefaultGPU() *Device {
	return &Device{
		Name:          "gpu0",
		H2D:           12e9,
		D2H:           12e9,
		LaunchLatency: 20 * time.Microsecond,
		OpsPerSec:     1e12,
		MemBandwidth:  180e9,
		Active:        180,
		Idle:          25,
	}
}

// DefaultFPGA returns a streaming FPGA profile: slower link, negligible
// launch latency, moderate throughput at very low power.
func DefaultFPGA() *Device {
	return &Device{
		Name:          "fpga0",
		H2D:           6e9,
		D2H:           6e9,
		LaunchLatency: 2 * time.Microsecond,
		OpsPerSec:     2e11,
		MemBandwidth:  40e9,
		Active:        30,
		Idle:          5,
	}
}

// cpuMemBandwidth is the single-core streaming bandwidth used to bound
// memory-bound operators on the host.  It exceeds the PCIe link rate —
// which is exactly why transfer-bound operators never benefit from
// offloading.
const cpuMemBandwidth = 16e9

// Profile characterizes the work() phase of an operator.
type Profile struct {
	N           int // values streamed
	ValBytes    int // bytes per value
	OpsPerValue int // ALU operations per value (compute intensity)
}

// Bytes returns the input volume.
func (p Profile) Bytes() float64 { return float64(p.N * p.ValBytes) }

// Cost is a placed phase's time and energy.
type Cost struct {
	Time   time.Duration
	Energy energy.Joules
}

// CPUWork prices the work phase on one CPU core at P-state ps: the
// slower of the compute rate and the streaming-bandwidth bound (compute
// and memory traffic overlap).
func CPUWork(m *energy.Model, ps energy.PState, p Profile) Cost {
	instr := uint64(p.N * p.OpsPerValue)
	computeSec := float64(instr) / (m.Core.IPC * float64(ps.Freq))
	memSec := p.Bytes() / cpuMemBandwidth
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	t := time.Duration(sec * float64(time.Second))
	w := energy.Counters{Instructions: instr, BytesReadDRAM: uint64(p.Bytes())}
	e := m.DynamicEnergy(w, ps).Total() + energy.StaticEnergy(ps.Active, t)
	return Cost{Time: t, Energy: e}
}

// DeviceWork prices the work phase on the device: ship the input down,
// launch, run at the slower of the device's compute and memory rates,
// ship a result bitmap back.
func (d *Device) DeviceWork(p Profile) Cost {
	kernelSec := float64(p.N*p.OpsPerValue) / d.OpsPerSec
	if memSec := p.Bytes() / d.MemBandwidth; memSec > kernelSec {
		kernelSec = memSec
	}
	t := d.LaunchLatency +
		time.Duration(p.Bytes()/d.H2D*float64(time.Second)) +
		time.Duration(kernelSec*float64(time.Second)) +
		time.Duration(float64(p.N)/8/d.D2H*float64(time.Second))
	e := energy.StaticEnergy(d.Active, t)
	return Cost{Time: t, Energy: e}
}

// Placement says where the Work phase runs.
type Placement int

// The placements.
const (
	OnCPU Placement = iota
	OnDevice
)

// String names the placement.
func (p Placement) String() string {
	if p == OnDevice {
		return "device"
	}
	return "cpu"
}

// Objective selects what Decide minimizes.
type Objective int

// The offload objectives.
const (
	MinTime Objective = iota
	MinEnergy
)

// Decide places the Work phase and returns both priced alternatives.
func Decide(m *energy.Model, d *Device, p Profile, obj Objective) (Placement, Cost, Cost) {
	cpu := CPUWork(m, m.Core.MaxPState(), p)
	dev := d.DeviceWork(p)
	pick := OnCPU
	switch obj {
	case MinEnergy:
		if dev.Energy < cpu.Energy {
			pick = OnDevice
		}
	default:
		if dev.Time < cpu.Time {
			pick = OnDevice
		}
	}
	return pick, cpu, dev
}

// Phase identifies one part of a hybrid operator.
type Phase int

// The hybrid operator phases of §IV.B.
const (
	Init Phase = iota
	Work
	Finish
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Init:
		return "init"
	case Work:
		return "work"
	case Finish:
		return "finish"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// HybridOp is an operator split into phases with per-phase placement.
// Init and Finish always run on the CPU (setup, result integration); the
// Work placement comes from Decide.
type HybridOp struct {
	Name      string
	Work      Profile
	InitWork  energy.Counters // CPU-side setup
	FinishOut energy.Counters // CPU-side result integration
}

// PhasePlan is the placement and cost of every phase.
type PhasePlan struct {
	Placement Placement
	Init      Cost
	WorkCost  Cost
	Finish    Cost
}

// Total returns end-to-end time and energy (phases are sequential).
func (p PhasePlan) Total() Cost {
	return Cost{
		Time:   p.Init.Time + p.WorkCost.Time + p.Finish.Time,
		Energy: p.Init.Energy + p.WorkCost.Energy + p.Finish.Energy,
	}
}

// Plan places the hybrid operator against the device under the objective.
func (h *HybridOp) Plan(m *energy.Model, d *Device, obj Objective) PhasePlan {
	ps := m.Core.MaxPState()
	costOf := func(w energy.Counters) Cost {
		t := m.CPUTime(w, ps)
		return Cost{Time: t, Energy: m.DynamicEnergy(w, ps).Total() + energy.StaticEnergy(ps.Active, t)}
	}
	place, cpu, dev := Decide(m, d, h.Work, obj)
	work := cpu
	if place == OnDevice {
		work = dev
	}
	return PhasePlan{
		Placement: place,
		Init:      costOf(h.InitWork),
		WorkCost:  work,
		Finish:    costOf(h.FinishOut),
	}
}
