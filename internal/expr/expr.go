// Package expr defines the scalar expression vocabulary shared by the SQL
// front end, the optimizer, and the execution engine: typed constants,
// comparison predicates, aggregate specifications, and sort keys.
package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/colstore"
	"repro/internal/vec"
)

// Value is a typed constant.
type Value struct {
	Kind colstore.Type
	I    int64
	F    float64
	S    string
}

// IntVal returns an integer constant.
func IntVal(v int64) Value { return Value{Kind: colstore.Int64, I: v} }

// FloatVal returns a floating-point constant.
func FloatVal(v float64) Value { return Value{Kind: colstore.Float64, F: v} }

// StrVal returns a string constant.
func StrVal(v string) Value { return Value{Kind: colstore.String, S: v} }

// String renders the constant as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case colstore.Int64:
		return strconv.FormatInt(v.I, 10)
	case colstore.Float64:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		// Integral values print bare ("5", "-0"), which would read back
		// as BIGINT literals; keep the rendering float-typed so the
		// canonical text round-trips.  Non-finite values have no SQL
		// literal form and are left as strconv spells them.
		if !strings.ContainsAny(s, ".eE") && !math.IsNaN(v.F) && !math.IsInf(v.F, 0) {
			s += ".0"
		}
		return s
	case colstore.String:
		return "'" + v.S + "'"
	}
	return "?"
}

// Pred is a simple comparison predicate `col op value`.  Conjunctions are
// represented as slices of predicates (the only boolean structure the
// engine's scans need; disjunctions are handled by bit-vector OR at the
// exec level).
type Pred struct {
	Col string
	Op  vec.CmpOp
	Val Value
}

// String renders the predicate in SQL syntax.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val)
}

// AggFunc is an aggregate function.
type AggFunc int

// The supported aggregates.
const (
	AggNone AggFunc = iota // plain column reference
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return "?"
}

// AggSpec is one aggregate output: Func applied to Col, named As.
type AggSpec struct {
	Func AggFunc
	Col  string // ignored for COUNT(*) (empty)
	As   string
}

// String renders the aggregate in SQL syntax.
func (a AggSpec) String() string {
	col := a.Col
	if col == "" {
		col = "*"
	}
	return fmt.Sprintf("%s(%s)", a.Func, col)
}

// SortKey orders by Col, descending if Desc.
type SortKey struct {
	Col  string
	Desc bool
}

// String renders the sort key in SQL syntax.
func (k SortKey) String() string {
	if k.Desc {
		return k.Col + " DESC"
	}
	return k.Col
}
