package expr

import (
	"testing"

	"repro/internal/colstore"
	"repro/internal/vec"
)

func TestValueConstructorsAndString(t *testing.T) {
	iv := IntVal(-42)
	if iv.Kind != colstore.Int64 || iv.I != -42 || iv.String() != "-42" {
		t.Fatalf("IntVal: %+v %q", iv, iv.String())
	}
	fv := FloatVal(2.5)
	if fv.Kind != colstore.Float64 || fv.F != 2.5 || fv.String() != "2.5" {
		t.Fatalf("FloatVal: %+v %q", fv, fv.String())
	}
	sv := StrVal("ASIA")
	if sv.Kind != colstore.String || sv.S != "ASIA" || sv.String() != "'ASIA'" {
		t.Fatalf("StrVal: %+v %q", sv, sv.String())
	}
}

func TestPredString(t *testing.T) {
	p := Pred{Col: "amount", Op: vec.GE, Val: FloatVal(10)}
	if p.String() != "amount >= 10.0" {
		t.Fatalf("Pred.String() = %q", p.String())
	}
	p2 := Pred{Col: "region", Op: vec.NE, Val: StrVal("ASIA")}
	if p2.String() != "region <> 'ASIA'" {
		t.Fatalf("Pred.String() = %q", p2.String())
	}
}

func TestAggFuncStrings(t *testing.T) {
	want := map[AggFunc]string{
		AggNone: "", AggCount: "COUNT", AggSum: "SUM",
		AggMin: "MIN", AggMax: "MAX", AggAvg: "AVG",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%d.String() = %q want %q", f, f.String(), s)
		}
	}
}

func TestAggSpecString(t *testing.T) {
	if s := (AggSpec{Func: AggSum, Col: "amount"}).String(); s != "SUM(amount)" {
		t.Fatalf("AggSpec.String() = %q", s)
	}
	if s := (AggSpec{Func: AggCount}).String(); s != "COUNT(*)" {
		t.Fatalf("COUNT(*) rendered as %q", s)
	}
}

func TestSortKeyString(t *testing.T) {
	if (SortKey{Col: "x"}).String() != "x" {
		t.Fatal("ascending key rendering wrong")
	}
	if (SortKey{Col: "x", Desc: true}).String() != "x DESC" {
		t.Fatal("descending key rendering wrong")
	}
}
