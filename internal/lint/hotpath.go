package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// HotPathCheck is the name of the hot-path-no-map analyzer.
const HotPathCheck = "hotpath"

// hotpathMarker tags a struct whose layout is under the flat-array
// contract: `//lint:hotpath` in the struct's doc comment.
const hotpathMarker = "lint:hotpath"

// AnalyzerHotPath enforces PR 4's flat-array contract on the per-morsel
// join/agg hot structs: a struct marked `//lint:hotpath` in its doc
// comment must not contain a Go map anywhere in its layout, transitively
// through named module types, slices, arrays, and pointers.  Go maps
// cost a hash + pointer chase per touch and defeat the cache-resident
// per-partition design the energy counters are priced on; the hot
// structs use open-addressing flat arrays instead.
//
// To keep the contract from silently vanishing, every executor package
// (Config.ExecPkgs) must contain at least one marked struct, and every
// struct name listed in Config.HotStructs must exist with its marker —
// deleting a fused/join kernel's marker without updating the config is
// a lint error, not a silent contract loss.
func AnalyzerHotPath() Analyzer {
	return Analyzer{
		Name: HotPathCheck,
		Doc:  "structs marked //lint:hotpath stay flat arrays: no Go maps anywhere in their layout",
		Run:  runHotPath,
	}
}

func runHotPath(u *Unit) []Diag {
	var out []Diag
	marked := make(map[string]map[string]bool) // import path -> marked struct names
	walkFiles(u, func(p *Package) bool { return !p.TestVariant }, func(p *Package, f *ast.File) {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if !hasMarker(doc) {
					continue
				}
				if marked[p.ImportPath] == nil {
					marked[p.ImportPath] = make(map[string]bool)
				}
				marked[p.ImportPath][ts.Name.Name] = true
				obj := p.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
					out = append(out, Diag{
						Pos:   u.Fset.Position(ts.Pos()),
						Check: HotPathCheck,
						Msg:   fmt.Sprintf("%s carries //lint:hotpath but is not a struct", ts.Name.Name),
					})
					continue
				}
				if path := findMap(u, obj.Type(), nil, make(map[types.Type]bool)); path != "" {
					out = append(out, Diag{
						Pos:   u.Fset.Position(ts.Pos()),
						Check: HotPathCheck,
						Msg: fmt.Sprintf("hot-path struct %s contains a Go map at %s; "+
							"the per-morsel hot structs are flat arrays (open addressing + chained int32 rows), never maps",
							ts.Name.Name, path),
					})
				}
			}
		}
	})
	for _, path := range u.Config.ExecPkgs {
		p := u.Pkg(path)
		if p == nil {
			continue
		}
		if len(marked[path]) == 0 {
			out = append(out, Diag{
				Pos:   u.Fset.Position(p.Files[0].Package),
				Check: HotPathCheck,
				Msg: fmt.Sprintf("package %s has no //lint:hotpath-marked struct; "+
					"the flat-array contract on the join hot structs must stay machine-checked", path),
			})
		}
	}
	// Must-exist roster: every named hot struct still carries its marker.
	paths := make([]string, 0, len(u.Config.HotStructs))
	for path := range u.Config.HotStructs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := u.Pkg(path)
		if p == nil {
			continue
		}
		for _, name := range u.Config.HotStructs[path] {
			if !marked[path][name] {
				out = append(out, Diag{
					Pos:   u.Fset.Position(p.Files[0].Package),
					Check: HotPathCheck,
					Msg: fmt.Sprintf("required hot-path struct %s.%s is missing its //lint:hotpath marker "+
						"(renamed, deleted, or unmarked); update lint.Config.HotStructs only with an intentional contract change", path, name),
				})
			}
		}
	}
	return out
}

// hasMarker reports whether a doc comment carries //lint:hotpath.
func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

// findMap walks a type's layout and returns the field path of the first
// embedded Go map ("" when map-free).  Named types outside the module
// (stdlib) are not descended into — sync.Mutex and friends are opaque.
func findMap(u *Unit, t types.Type, path []string, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch x := t.(type) {
	case *types.Named:
		if obj := x.Obj(); obj.Pkg() != nil && !u.localType(obj.Pkg().Path()) {
			return "" // opaque foreign type (sync.Mutex and friends)
		}
		return findMap(u, x.Underlying(), path, seen)
	case *types.Map:
		if len(path) == 0 {
			return "(the type itself)"
		}
		return strings.Join(path, ".")
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			f := x.Field(i)
			if s := findMap(u, f.Type(), extend(path, f.Name()), seen); s != "" {
				return s
			}
		}
	case *types.Slice:
		return findMap(u, x.Elem(), extend(path, "[]"), seen)
	case *types.Array:
		return findMap(u, x.Elem(), extend(path, "[n]"), seen)
	case *types.Pointer:
		return findMap(u, x.Elem(), extend(path, "*"), seen)
	}
	return ""
}

// extend copies-and-appends so sibling fields never alias one path
// backing array.
func extend(path []string, elem string) []string {
	return append(append(make([]string, 0, len(path)+1), path...), elem)
}
