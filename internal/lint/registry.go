package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// RegistryCheck is the name of the registry-sync analyzer.
const RegistryCheck = "registrysync"

// AnalyzerRegistrySync keeps the four places an experiment lives in
// agreement: the registry (register(Experiment{ID: ...}) calls in
// Config.RegistryPkg), the EXPERIMENTS.md claim table, the Benchmark*
// functions the table references, and the committed BENCH_*.json
// baseline the CI energy gate diffs against.
//
// Checks:
//
//   - every registered E-id has an EXPERIMENTS.md row, and every row
//     names a registered experiment (bidirectional — drift in either
//     direction fails);
//   - every `Benchmark<Name>` mentioned in EXPERIMENTS.md exists as a
//     benchmark function;
//   - every benchmark in the newest BENCH_PR<n>.json baseline still
//     exists in code, and every custom metric key it gates (J/op,
//     bytes-touched/op, ... — anything beyond the standard ns/op,
//     B/op, allocs/op, MB/s) is actually reported by a
//     b.ReportMetric call somewhere in the module.
func AnalyzerRegistrySync() Analyzer {
	return Analyzer{
		Name: RegistryCheck,
		Doc:  "experiments registry, EXPERIMENTS.md, Benchmark funcs, and BENCH_*.json baselines must agree",
		Run:  runRegistrySync,
	}
}

var (
	mdRowRe     = regexp.MustCompile(`^\|\s*(E\d+)\s*\|`)
	benchRefRe  = regexp.MustCompile(`Benchmark[A-Za-z0-9_]+`)
	benchFileRe = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)
)

// stdMetrics are go-bench metrics every benchmark emits; anything else
// in a baseline is a custom metric some ReportMetric call must produce.
var stdMetrics = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true}

func runRegistrySync(u *Unit) []Diag {
	if u.Config.RegistryPkg == "" {
		return nil
	}
	var out []Diag

	// 1. Registered experiment IDs, from register(Experiment{ID: "E..."}).
	registered := make(map[string]token.Position)
	if p := u.Pkg(u.Config.RegistryPkg); p != nil {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "register" {
					return true
				}
				if len(call.Args) != 1 {
					return true
				}
				lit, ok := call.Args[0].(*ast.CompositeLit)
				if !ok {
					return true
				}
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if k, ok := kv.Key.(*ast.Ident); !ok || k.Name != "ID" {
						continue
					}
					if bl, ok := kv.Value.(*ast.BasicLit); ok {
						if id, err := strconv.Unquote(bl.Value); err == nil {
							registered[id] = u.Fset.Position(bl.Pos())
						}
					}
				}
				return true
			})
		}
	}

	// 2. EXPERIMENTS.md rows and the benchmark names they reference.
	mdPath := filepath.Join(u.Root, "EXPERIMENTS.md")
	mdRows := make(map[string]token.Position)
	type benchRef struct {
		name string
		pos  token.Position
	}
	var benchRefs []benchRef
	if data, err := os.ReadFile(mdPath); err == nil {
		for i, line := range strings.Split(string(data), "\n") {
			pos := token.Position{Filename: mdPath, Line: i + 1, Column: 1}
			if m := mdRowRe.FindStringSubmatch(line); m != nil {
				mdRows[m[1]] = pos
				for _, b := range benchRefRe.FindAllString(line, -1) {
					benchRefs = append(benchRefs, benchRef{b, pos})
				}
			}
		}
	} else {
		out = append(out, Diag{
			Pos:   token.Position{Filename: mdPath, Line: 1, Column: 1},
			Check: RegistryCheck,
			Msg:   "EXPERIMENTS.md is missing but the experiments registry is populated",
		})
	}

	for _, id := range sortedKeys(registered) {
		if _, ok := mdRows[id]; !ok {
			out = append(out, Diag{Pos: registered[id], Check: RegistryCheck,
				Msg: fmt.Sprintf("experiment %s is registered in code but has no EXPERIMENTS.md row", id)})
		}
	}
	for _, id := range sortedKeys(mdRows) {
		if _, ok := registered[id]; !ok {
			out = append(out, Diag{Pos: mdRows[id], Check: RegistryCheck,
				Msg: fmt.Sprintf("EXPERIMENTS.md lists %s but no register(Experiment{ID: %q}) exists in %s",
					id, id, u.Config.RegistryPkg)})
		}
	}

	// 3. Benchmark functions and ReportMetric keys declared anywhere in
	// the module (benchmarks live in the root package's test files).
	benchFuncs := make(map[string]bool)
	metricKeys := make(map[string]bool)
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Benchmark") {
					benchFuncs[fd.Name.Name] = true
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "ReportMetric" {
					return true
				}
				if bl, ok := call.Args[1].(*ast.BasicLit); ok {
					if key, err := strconv.Unquote(bl.Value); err == nil {
						metricKeys[key] = true
					}
				}
				return true
			})
		}
	}
	for _, ref := range benchRefs {
		if !benchFuncs[ref.name] {
			out = append(out, Diag{Pos: ref.pos, Check: RegistryCheck,
				Msg: fmt.Sprintf("EXPERIMENTS.md references %s but no such benchmark function exists", ref.name)})
		}
	}

	// 4. The newest committed baseline must gate benchmarks and metric
	// keys that still exist.
	if base, pos := newestBaseline(u.Root); base != "" {
		out = append(out, checkBaseline(base, pos, benchFuncs, metricKeys)...)
	}
	return out
}

// newestBaseline returns the highest-numbered BENCH_PR<n>.json in root.
func newestBaseline(root string) (string, token.Position) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return "", token.Position{}
	}
	best, bestN := "", -1
	for _, e := range entries {
		if m := benchFileRe.FindStringSubmatch(e.Name()); m != nil {
			if n, _ := strconv.Atoi(m[1]); n > bestN {
				best, bestN = filepath.Join(root, e.Name()), n
			}
		}
	}
	return best, token.Position{Filename: best, Line: 1, Column: 1}
}

// checkBaseline verifies one bench-trajectory JSON against the declared
// benchmark functions and reported metric keys.
func checkBaseline(path string, pos token.Position, benchFuncs, metricKeys map[string]bool) []Diag {
	var out []Diag
	data, err := os.ReadFile(path)
	if err != nil {
		return []Diag{{Pos: pos, Check: RegistryCheck, Msg: "cannot read baseline: " + err.Error()}}
	}
	var doc struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return []Diag{{Pos: pos, Check: RegistryCheck, Msg: "baseline is not valid bench-trajectory JSON: " + err.Error()}}
	}
	missing := make(map[string]bool)
	staleKeys := make(map[string]bool)
	for _, b := range doc.Benchmarks {
		base := benchBaseName(b.Name)
		if !benchFuncs[base] && !missing[base] {
			missing[base] = true
			out = append(out, Diag{Pos: pos, Check: RegistryCheck,
				Msg: fmt.Sprintf("baseline %s gates %s but no such benchmark function exists (stale baseline?)",
					filepath.Base(path), base)})
		}
		for key := range b.Metrics {
			if key == "iterations" || stdMetrics[key] || metricKeys[key] || staleKeys[key] {
				continue
			}
			staleKeys[key] = true
			out = append(out, Diag{Pos: pos, Check: RegistryCheck,
				Msg: fmt.Sprintf("baseline %s gates custom metric %q but no b.ReportMetric call emits it",
					filepath.Base(path), key)})
		}
	}
	return out
}

// benchBaseName strips sub-benchmark segments and the trailing
// -GOMAXPROCS suffix: "BenchmarkX/sub/case-2" -> "BenchmarkX".
func benchBaseName(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// sortedKeys returns the map's keys in a stable E-number-aware order.
func sortedKeys(m map[string]token.Position) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(keys[i], "E%d", &a)
		fmt.Sscanf(keys[j], "E%d", &b)
		if a != b {
			return a < b
		}
		return keys[i] < keys[j]
	})
	return keys
}
