package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// GoroutineCheck is the name of the goroutine-discipline analyzer.
const GoroutineCheck = "goroutines"

// AnalyzerGoroutines confines concurrency in the executor packages
// (Config.ExecPkgs) to the shared worker-pool helpers
// (Config.PoolFuncs, i.e. runPool/runMorsels).  Those helpers are the
// only code that honors the multi-query scheduler's revocable core
// leases — they re-read Ctx.DOP() before every task claim so a shrunken
// grant retires workers at the next morsel boundary and a canceled
// lease stops all claiming.  A `go` statement anywhere else in the
// executor spawns a worker the scheduler cannot resize or cancel,
// silently breaking lease accounting and mid-query cancellation.
//
// Test files are exempt: tests legitimately race goroutines against the
// operators to exercise cancellation.
func AnalyzerGoroutines() Analyzer {
	return Analyzer{
		Name: GoroutineCheck,
		Doc:  "`go` statements in executor packages only inside the lease-honoring pool helpers",
		Run:  runGoroutines,
	}
}

func runGoroutines(u *Unit) []Diag {
	allowed := make(map[string]bool)
	for _, f := range u.Config.PoolFuncs {
		allowed[f] = true
	}
	var out []Diag
	walkFiles(u, func(p *Package) bool { return u.inExec(p) && !p.TestVariant }, func(p *Package, f *ast.File) {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			return
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if allowed[fd.Name.Name] {
					return true
				}
				out = append(out, Diag{
					Pos:   u.Fset.Position(g.Pos()),
					Check: GoroutineCheck,
					Msg: fmt.Sprintf("`go` statement in %s: executor goroutines must be spawned by %s "+
						"so workers honor revocable core leases and morsel-boundary cancellation",
						fd.Name.Name, strings.Join(u.Config.PoolFuncs, "/")),
				})
				return true
			})
		}
	})
	return out
}
