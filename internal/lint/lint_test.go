package lint

// TestRepoSatisfiesInvariants is the suite's own tier-1 gate: it loads
// every package in this repository and runs all six analyzers, so `go
// test ./...` fails the moment a determinism or energy-accounting
// invariant regresses — the same run `cmd/eimdb-lint ./...` performs in
// the CI lint job.

import "testing"

func TestRepoSatisfiesInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped under -short")
	}
	l := testLoader(t)
	u, err := l.LoadModule(DefaultConfig())
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(u, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d lint issue(s); run `go run ./cmd/eimdb-lint ./...` locally", len(diags))
	}
}

func TestDefaultConfigPackagesExist(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped under -short")
	}
	l := testLoader(t)
	u, err := l.LoadModule(DefaultConfig())
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	// A renamed package must not silently fall out of the contract's
	// scope: every configured path has to resolve to a loaded package.
	var paths []string
	paths = append(paths, u.Config.DetPkgs...)
	paths = append(paths, u.Config.ExecPkgs...)
	paths = append(paths, u.Config.EnergyPkg, u.Config.RegistryPkg, u.Config.RootPkg)
	for _, path := range paths {
		if u.Pkg(path) == nil {
			t.Errorf("config names package %s but the module does not contain it", path)
		}
	}
}
