package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package as the analyzers see it.
//
// In-package test files cannot be merged into the importable package
// (that would manufacture import cycles through packages the tests pull
// in), so a directory with tests loads as up to three packages, exactly
// like the go tool builds them: the importable base, a TestVariant with
// the _test.go files merged (never imported by anyone), and an external
// foo_test package.  Lint lists the files analyzers should report on —
// for a TestVariant only the _test.go files, so base-file diagnostics
// are not emitted twice.
type Package struct {
	ImportPath  string
	Dir         string
	Files       []*ast.File // all files type-checked into this package
	Lint        []*ast.File // the subset analyzers report on
	Types       *types.Package
	Info        *types.Info
	TestVariant bool // base files re-checked together with in-package tests
}

// Loader parses and type-checks module packages on demand, resolving
// module-internal imports itself and standard-library imports through
// the stdlib source importer (the only importer that works with no
// network and no pre-compiled export data).
type Loader struct {
	Fset    *token.FileSet
	Root    string
	ModPath string

	std     types.ImporterFrom
	base    map[string]*Package // importable packages by import path
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		Root:    root,
		ModPath: mod,
		std:     std,
		base:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

// pathFor maps a directory under the module root to its import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

type unitImporter struct{ l *Loader }

func (i unitImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == i.l.ModPath || strings.HasPrefix(path, i.l.ModPath+"/") {
		p, err := i.l.loadBase(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return i.l.std.ImportFrom(path, i.l.Root, 0)
}

// parseDir parses every .go file in dir, sorted by name, and splits the
// files into base, in-package test, and external test groups.
func (l *Loader) parseDir(dir string) (base, intest, xtest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtest = append(xtest, f)
		case strings.HasSuffix(name, "_test.go"):
			intest = append(intest, f)
		default:
			base = append(base, f)
		}
	}
	return base, intest, xtest, nil
}

// check type-checks files as one package.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: unitImporter{l}}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// loadBase loads the importable (non-test) package at the import path.
func (l *Loader) loadBase(path string) (*Package, error) {
	if p, ok := l.base[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkg, info, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	p := &Package{ImportPath: path, Dir: dir, Files: files, Lint: files, Types: pkg, Info: info}
	l.base[path] = p
	return p, nil
}

// loadDir loads every package variant in one directory: the importable
// base, the base+tests variant, and the external test package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path := l.pathFor(dir)
	base, intest, xtest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	if len(base) > 0 {
		p, err := l.loadBase(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(intest) > 0 {
		files := append(append([]*ast.File(nil), base...), intest...)
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			ImportPath: path, Dir: dir, Files: files, Lint: intest,
			Types: pkg, Info: info, TestVariant: true,
		})
	}
	if len(xtest) > 0 {
		xpath := path + "_test"
		pkg, info, err := l.check(xpath, xtest)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			ImportPath: xpath, Dir: dir, Files: xtest, Lint: xtest,
			Types: pkg, Info: info,
		})
	}
	return out, nil
}

// LoadModule loads every package in the module (tests included) and
// returns a Unit configured with cfg.
func (l *Loader) LoadModule(cfg Config) (*Unit, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	u := &Unit{ModPath: l.ModPath, Root: l.Root, Fset: l.Fset, Config: cfg}
	for _, dir := range dirs {
		pkgs, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		u.Pkgs = append(u.Pkgs, pkgs...)
	}
	return u, nil
}

// LoadFixture loads the single directory dir as the package with the
// given import path (used by the testdata fixture tests, whose packages
// live outside the module build).
func (l *Loader) LoadFixture(dir, path string) (*Package, error) {
	base, intest, xtest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(intest)+len(xtest) > 0 {
		return nil, fmt.Errorf("lint: fixture %s must not contain test files", dir)
	}
	pkg, info, err := l.check(path, base)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: path, Dir: dir, Files: base, Lint: base, Types: pkg, Info: info}, nil
}
