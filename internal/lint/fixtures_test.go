package lint

// The fixture tests load the mini-packages under testdata, point one
// analyzer at each via a fixture-scoped Config, and assert the exact
// diagnostics (file:line check).  Expected lines are anchored to source
// text, not hard-coded numbers, so editing a fixture comment cannot
// silently skew an assertion.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// testLoader shares one Loader across every test in the package: each
// NewLoader re-typechecks the standard library from source (~1s), and
// the base-package cache makes later fixture loads nearly free.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

// loadFixture loads testdata/src/<name> as import path fixture/<name>.
func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	l := testLoader(t)
	p, err := l.LoadFixture(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return l, p
}

// fixtureUnit builds a Unit over the given packages with a
// fixture-scoped config.
func fixtureUnit(l *Loader, cfg Config, pkgs ...*Package) *Unit {
	return &Unit{ModPath: l.ModPath, Root: l.Root, Fset: l.Fset, Pkgs: pkgs, Config: cfg}
}

// lineMatching returns the 1-based line number of the first line of
// file matching the regexp, failing the test when none does.
func lineMatching(t *testing.T, file, pattern string) int {
	t.Helper()
	re := regexp.MustCompile(pattern)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("reading %s: %v", file, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if re.MatchString(line) {
			return i + 1
		}
	}
	t.Fatalf("%s: no line matches %q", file, pattern)
	return 0
}

// keyOf compresses a diagnostic to "basename:line check" for comparison.
func keyOf(d Diag) string {
	return fmt.Sprintf("%s:%d %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check)
}

// assertDiags compares got against want as multisets of keyOf strings.
func assertDiags(t *testing.T, got []Diag, want []string) {
	t.Helper()
	gotKeys := make([]string, len(got))
	for i, d := range got {
		gotKeys[i] = keyOf(d)
	}
	sort.Strings(gotKeys)
	want = append([]string(nil), want...)
	sort.Strings(want)
	if strings.Join(gotKeys, "\n") != strings.Join(want, "\n") {
		var full []string
		for _, d := range got {
			full = append(full, d.String())
		}
		t.Errorf("diagnostics mismatch\n got: %v\nwant: %v\nfull:\n%s",
			gotKeys, want, strings.Join(full, "\n"))
	}
}

func TestDeterminismFiresOnViolations(t *testing.T) {
	l, p := loadFixture(t, "determinism_bad")
	u := fixtureUnit(l, Config{DetPkgs: []string{p.ImportPath}}, p)
	file := filepath.Join(p.Dir, "det.go")
	want := []string{
		fmt.Sprintf("det.go:%d determinism", lineMatching(t, file, `time\.Now\(\)`)),
		fmt.Sprintf("det.go:%d determinism", lineMatching(t, file, `time\.Since\(start\)`)),
		fmt.Sprintf("det.go:%d determinism", lineMatching(t, file, `rand\.Intn\(10\)`)),
		fmt.Sprintf("det.go:%d determinism", lineMatching(t, file, `for k := range m`)),
		fmt.Sprintf("det.go:%d determinism", lineMatching(t, file, `for _, v := range m`)),
		fmt.Sprintf("det.go:%d determinism", lineMatching(t, file, `for k, v := range m`)),
	}
	assertDiags(t, AnalyzerDeterminism().Run(u), want)
}

func TestDeterminismSilentOnCorrectedForms(t *testing.T) {
	l, p := loadFixture(t, "determinism_good")
	u := fixtureUnit(l, Config{DetPkgs: []string{p.ImportPath}}, p)
	assertDiags(t, AnalyzerDeterminism().Run(u), nil)
}

func TestDeterminismIgnoresUnscopedPackages(t *testing.T) {
	l, p := loadFixture(t, "determinism_bad")
	u := fixtureUnit(l, Config{DetPkgs: []string{"fixture/somewhere_else"}}, p)
	assertDiags(t, AnalyzerDeterminism().Run(u), nil)
}

func TestMeterDisciplineFiresOnSharedWrites(t *testing.T) {
	l, p := loadFixture(t, "meter_bad")
	u := fixtureUnit(l, Config{EnergyPkg: "repro/internal/energy"}, p)
	file := filepath.Join(p.Dir, "meter.go")
	want := []string{
		fmt.Sprintf("meter.go:%d meterdiscipline", lineMatching(t, file, `r\.work\.TuplesIn`)),
		fmt.Sprintf("meter.go:%d meterdiscipline", lineMatching(t, file, `parts\[0\]\.BytesReadDRAM`)),
		fmt.Sprintf("meter.go:%d meterdiscipline", lineMatching(t, file, `global\.Instructions`)),
		fmt.Sprintf("meter.go:%d meterdiscipline", lineMatching(t, file, `&global\.BytesWrittenDRAM`)),
	}
	assertDiags(t, AnalyzerMeterDiscipline().Run(u), want)
}

func TestMeterDisciplineSilentOnLocalCounters(t *testing.T) {
	l, p := loadFixture(t, "meter_good")
	u := fixtureUnit(l, Config{EnergyPkg: "repro/internal/energy"}, p)
	assertDiags(t, AnalyzerMeterDiscipline().Run(u), nil)
}

func TestGoroutinesOnlyInPoolFuncs(t *testing.T) {
	l, p := loadFixture(t, "gopool")
	u := fixtureUnit(l, Config{
		ExecPkgs:  []string{p.ImportPath},
		PoolFuncs: []string{"runPool", "runMorsels"},
	}, p)
	file := filepath.Join(p.Dir, "pool.go")
	want := []string{
		fmt.Sprintf("pool.go:%d goroutines", lineMatching(t, file, `rogue goroutine`)),
		fmt.Sprintf("pool.go:%d goroutines", lineMatching(t, file, `still inside Indirect`)),
	}
	assertDiags(t, AnalyzerGoroutines().Run(u), want)
}

func TestHotPathFiresOnMaps(t *testing.T) {
	l, p := loadFixture(t, "hotpath_bad")
	u := fixtureUnit(l, Config{ExecPkgs: []string{p.ImportPath}}, p)
	file := filepath.Join(p.Dir, "hot.go")
	want := []string{
		fmt.Sprintf("hot.go:%d hotpath", lineMatching(t, file, `type table struct`)),
		fmt.Sprintf("hot.go:%d hotpath", lineMatching(t, file, `type nested struct`)),
		fmt.Sprintf("hot.go:%d hotpath", lineMatching(t, file, `type count int`)),
	}
	got := AnalyzerHotPath().Run(u)
	assertDiags(t, got, want)
	// The transitive walk must name the path through the slice.
	for _, d := range got {
		if strings.Contains(d.Msg, "nested") && !strings.Contains(d.Msg, "parts.[].lookup") {
			t.Errorf("nested diagnostic should name the field path, got: %s", d.Msg)
		}
	}
}

func TestHotPathSilentOnFlatStructs(t *testing.T) {
	l, p := loadFixture(t, "hotpath_good")
	u := fixtureUnit(l, Config{ExecPkgs: []string{p.ImportPath}}, p)
	assertDiags(t, AnalyzerHotPath().Run(u), nil)
}

func TestHotPathRequiresMarkedStruct(t *testing.T) {
	l, p := loadFixture(t, "hotpath_missing")
	u := fixtureUnit(l, Config{ExecPkgs: []string{p.ImportPath}}, p)
	file := filepath.Join(p.Dir, "cold.go")
	want := []string{
		fmt.Sprintf("cold.go:%d hotpath", lineMatching(t, file, `package hotpath_missing`)),
	}
	assertDiags(t, AnalyzerHotPath().Run(u), want)
}

// loadRegistryFixture loads testdata/<name>/src as the registry package
// and roots the unit at testdata/<name>, where the fixture's
// EXPERIMENTS.md and BENCH_PR*.json live.
func loadRegistryFixture(t *testing.T, name string) *Unit {
	t.Helper()
	l := testLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	p, err := l.LoadFixture(filepath.Join(dir, "src"), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	u := fixtureUnit(l, Config{RegistryPkg: p.ImportPath}, p)
	u.Root = dir
	return u
}

func TestRegistrySyncFiresOnDrift(t *testing.T) {
	u := loadRegistryFixture(t, "registry_bad")
	regGo := filepath.Join(u.Root, "src", "reg.go")
	md := filepath.Join(u.Root, "EXPERIMENTS.md")
	e3Row := lineMatching(t, md, `^\|\s*E3\s*\|`)
	want := []string{
		// E2 registered but undocumented: anchored at the ID literal.
		fmt.Sprintf("reg.go:%d registrysync", lineMatching(t, regGo, `ID: "E2"`)),
		// E3 documented but unregistered, and its row names a ghost
		// benchmark: two diagnostics on the same table row.
		fmt.Sprintf("EXPERIMENTS.md:%d registrysync", e3Row),
		fmt.Sprintf("EXPERIMENTS.md:%d registrysync", e3Row),
		// The stale baseline gates a vanished benchmark and an
		// unreported custom metric key.
		"BENCH_PR9.json:1 registrysync",
		"BENCH_PR9.json:1 registrysync",
	}
	got := AnalyzerRegistrySync().Run(u)
	assertDiags(t, got, want)
	for _, frag := range []string{"E2", "E3", "BenchmarkNope", "BenchmarkGone", `"zap/op"`} {
		found := false
		for _, d := range got {
			if strings.Contains(d.Msg, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentions %s", frag)
		}
	}
}

func TestRegistrySyncSilentWhenInAgreement(t *testing.T) {
	u := loadRegistryFixture(t, "registry_good")
	assertDiags(t, AnalyzerRegistrySync().Run(u), nil)
}

func TestSuppressionDirectives(t *testing.T) {
	l, p := loadFixture(t, "suppressed")
	u := fixtureUnit(l, Config{DetPkgs: []string{p.ImportPath}}, p)
	file := filepath.Join(p.Dir, "sup.go")
	// A reasoned directive suppresses (trailing or on the line above);
	// an empty reason, an unknown check, or no check at all leaves the
	// violation standing AND flags the directive itself.
	noReason := lineMatching(t, file, `lint:allow determinism:$`)
	wrongCheck := lineMatching(t, file, `nosuchcheck`)
	noCheck := lineMatching(t, file, `lint:allow$`)
	want := []string{
		fmt.Sprintf("sup.go:%d determinism", noReason),
		fmt.Sprintf("sup.go:%d suppress", noReason),
		fmt.Sprintf("sup.go:%d determinism", wrongCheck),
		fmt.Sprintf("sup.go:%d suppress", wrongCheck),
		fmt.Sprintf("sup.go:%d determinism", noCheck),
		fmt.Sprintf("sup.go:%d suppress", noCheck),
	}
	got := Run(u, All())
	assertDiags(t, got, want)
	// The two reasoned directives must have suppressed their time.Now
	// lines: no diagnostic outside the three rejected-directive lines.
	for _, d := range got {
		if d.Pos.Line != noReason && d.Pos.Line != wrongCheck && d.Pos.Line != noCheck {
			t.Errorf("diagnostic escaped suppression: %s", d)
		}
	}
}

func TestParseDirective(t *testing.T) {
	known := map[string]bool{"determinism": true}
	cases := []struct {
		text        string
		isDirective bool
		valid       bool
		check       string
	}{
		{"//lint:allow determinism: wall-clock display only", true, true, "determinism"},
		{"//lint:allow determinism:", true, false, "determinism"},
		{"//lint:allow determinism", true, false, "determinism"},
		{"//lint:allow nosuchcheck: because", true, false, "nosuchcheck"},
		{"//lint:allow", true, false, ""},
		{"//lint:allowance is not a directive", false, false, ""},
		{"//lint:hotpath", false, false, ""},
		{"// ordinary comment", false, false, ""},
	}
	for _, c := range cases {
		d, ok := parseDirective(c.text, known)
		if ok != c.isDirective || (ok && (d.valid != c.valid || d.check != c.check)) {
			t.Errorf("parseDirective(%q) = %+v, %v; want directive=%v valid=%v check=%q",
				c.text, d, ok, c.isDirective, c.valid, c.check)
		}
	}
}
