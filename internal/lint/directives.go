package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// SuppressCheck is the name of the suppression-with-reason analyzer.
const SuppressCheck = "suppress"

// allowPrefix is the escape hatch: `//lint:allow <check>: <reason>`
// suppresses <check> diagnostics on the comment's own line and on the
// line immediately below it (so the directive can trail the offending
// statement or sit on its own line directly above it).  An empty reason
// or an unknown check name makes the directive itself a diagnostic and
// suppresses nothing.
const allowPrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos    token.Position // position of the comment
	check  string
	reason string
	valid  bool // well-formed: known check, non-empty reason
}

// parseDirective parses one comment's text, reporting ok=false when the
// comment is not a lint:allow directive at all.
func parseDirective(text string, known map[string]bool) (d directive, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return d, false
	}
	rest := text[len(allowPrefix):]
	// Require a separator so `//lint:allowx` is not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return d, false
	}
	rest = strings.TrimSpace(rest)
	check, reason, found := strings.Cut(rest, ":")
	if !found {
		check = rest
	}
	d.check = strings.TrimSpace(check)
	d.reason = strings.TrimSpace(reason)
	d.valid = known[d.check] && d.reason != ""
	return d, true
}

// suppressions indexes well-formed directives by file and line.
type suppressions struct {
	// byLine maps filename -> line -> checks allowed on that line.
	byLine map[string]map[int]map[string]bool
}

// allows reports whether a well-formed directive covers the diagnostic.
func (s *suppressions) allows(d Diag) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Check]
}

// collectDirectives gathers every well-formed //lint:allow directive in
// the unit.  Each directive covers its own source line and the next
// line.
func collectDirectives(u *Unit) *suppressions {
	known := checkNames()
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, p := range u.Pkgs {
		for _, f := range p.Lint {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c.Text, known)
					if !ok || !d.valid {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					end := u.Fset.Position(c.End())
					lines := s.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						s.byLine[pos.Filename] = lines
					}
					for _, line := range []int{pos.Line, end.Line + 1} {
						if lines[line] == nil {
							lines[line] = make(map[string]bool)
						}
						lines[line][d.check] = true
					}
				}
			}
		}
	}
	return s
}

// AnalyzerSuppress validates every //lint:allow directive: the named
// check must exist and the reason must be non-empty.  Suppressing a
// suppression diagnostic is impossible by construction — a malformed
// directive is not collected, and Run never filters this analyzer's
// output.
func AnalyzerSuppress() Analyzer {
	return Analyzer{
		Name: SuppressCheck,
		Doc:  "//lint:allow directives must name a real check and give a non-empty reason",
		Run: func(u *Unit) []Diag {
			known := checkNames()
			var out []Diag
			for _, p := range u.Pkgs {
				for _, f := range p.Lint {
					for _, cg := range f.Comments {
						for _, c := range cg.List {
							d, ok := parseDirective(c.Text, known)
							if !ok || d.valid {
								continue
							}
							pos := u.Fset.Position(c.Pos())
							switch {
							case d.check == "":
								out = append(out, Diag{Pos: pos, Check: SuppressCheck,
									Msg: "lint:allow directive names no check (want //lint:allow <check>: <reason>)"})
							case !known[d.check]:
								out = append(out, Diag{Pos: pos, Check: SuppressCheck,
									Msg: fmt.Sprintf("lint:allow names unknown check %q", d.check)})
							default:
								out = append(out, Diag{Pos: pos, Check: SuppressCheck,
									Msg: "lint:allow " + d.check + " has no reason — every suppression must say why the rule does not apply"})
							}
						}
					}
				}
			}
			return out
		},
	}
}

// walkFiles applies fn to every linted file of every package for which
// keep returns true.
func walkFiles(u *Unit, keep func(p *Package) bool, fn func(p *Package, f *ast.File)) {
	for _, p := range u.Pkgs {
		if keep != nil && !keep(p) {
			continue
		}
		for _, f := range p.Lint {
			fn(p, f)
		}
	}
}
