// Package hotpath_missing is an executor package with no marked hot
// struct: the contract must not be deletable by dropping the marker.
package hotpath_missing

type plain struct {
	n int
}

// Use keeps the struct referenced.
func Use() int { return plain{n: 1}.n }
