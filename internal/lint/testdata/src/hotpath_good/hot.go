// Package hotpath_good keeps its marked hot structs flat; unmarked
// structs may use maps freely.
package hotpath_good

import "sync"

// table is the corrected flat form: open addressing + chained rows.
//
//lint:hotpath
type table struct {
	mask     uint64
	slotKey  []int64
	slotHead []int32
	rows     [4]int32
	next     *table
	mu       sync.Mutex // foreign types are opaque, not descended into
}

// coordinator is unmarked, so its map is nobody's business.
type coordinator struct {
	pending map[int]*table
}
