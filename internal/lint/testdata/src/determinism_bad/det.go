// Package det_bad injects one violation per determinism rule; the
// fixture test asserts the exact diagnostics.
package det_bad

import (
	"fmt"
	"math/rand"
	"time"
)

// Wall reads the wall clock twice.
func Wall() time.Duration {
	start := time.Now()      // want: wall clock
	return time.Since(start) // want: wall clock
}

// Draw uses the process-global rand source.
func Draw() int { return rand.Intn(10) } // want: global rand

// Leak appends map keys in iteration order and never sorts.
func Leak(m map[string]int) []string {
	var keys []string
	for k := range m { // want: order leaks into keys
		keys = append(keys, k)
	}
	return keys
}

// FloatSum accumulates floats in iteration order (FP addition is not
// associative, so the sum depends on the order).
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want: float accumulation
		sum += v
	}
	return sum
}

// PrintAll writes output in iteration order.
func PrintAll(m map[string]int) {
	for k, v := range m { // want: output in map order
		fmt.Println(k, v)
	}
}
