// Package suppressed exercises the //lint:allow escape hatch: with a
// reason it suppresses, without one (or with a bogus check name) the
// directive itself becomes the diagnostic and suppresses nothing.
package suppressed

import "time"

// Allowed carries a trailing directive with a reason: suppressed.
func Allowed() time.Time {
	return time.Now() //lint:allow determinism: fixture exercises the escape hatch
}

// AllowedAbove carries the directive on the preceding line: suppressed.
func AllowedAbove() time.Time {
	//lint:allow determinism: a directive also covers the line below it
	return time.Now()
}

// NoReason has an empty reason: rejected, and the violation survives.
func NoReason() time.Time {
	return time.Now() //lint:allow determinism:
}

// WrongCheck names a check that does not exist.
func WrongCheck() time.Time {
	return time.Now() //lint:allow nosuchcheck: because I said so
}

// NoCheck names nothing at all.
func NoCheck() time.Time {
	return time.Now() //lint:allow
}
