// Package meter_bad mutates energy counters stored in shared
// structures, bypassing the metered APIs.
package meter_bad

import "repro/internal/energy"

type report struct {
	work energy.Counters
}

var global energy.Counters

// Bad writes counter fields through everything but a local value.
func Bad(r *report, parts []energy.Counters) *uint64 {
	r.work.TuplesIn += 1            // want: through a struct
	parts[0].BytesReadDRAM = 4096   // want: through a slice element
	global.Instructions++           // want: package-level counters
	return &global.BytesWrittenDRAM // want: address escape
}
