// Package meter_good builds counters locally and merges them through
// the metered APIs — the allowed pattern.
package meter_good

import "repro/internal/energy"

// Good accumulates into a local Counters value and merges via Meter.Add.
func Good(m *energy.Meter) {
	var w energy.Counters
	w.TuplesIn += 10
	w.BytesReadDRAM = 64
	bump(&w)
	m.Add(w)
}

// bump writes through a pointer parameter to a counters value — still a
// function-local counters variable.
func bump(w *energy.Counters) {
	w.Instructions++
}

// Snapshot reads (never writes) stored counters: fine.
func Snapshot(m *energy.Meter) uint64 {
	c := m.Snapshot()
	return c.TuplesIn
}
