// Package gopool has one sanctioned worker-pool helper and one rogue
// goroutine spawn.
package gopool

// runPool is the sanctioned pool helper (named in Config.PoolFuncs).
func runPool(work func()) {
	done := make(chan struct{})
	go func() { // allowed: inside the pool helper
		work()
		close(done)
	}()
	<-done
}

// Rogue spawns a worker outside the pool helpers.
func Rogue(work func()) {
	go work() // want: rogue goroutine
}

// Indirect also counts: the analyzer keys on the enclosing declaration.
func Indirect(work func()) {
	helper := func() {
		go work() // want: still inside Indirect, not runPool
	}
	helper()
}
