// Package hotpath_bad marks structs as hot-path and then hides maps in
// them, directly and transitively.
package hotpath_bad

// table keeps a direct map.
//
//lint:hotpath
type table struct {
	idx map[int64]int32
}

// nested reaches a map through a slice of another struct.
//
//lint:hotpath
type nested struct {
	parts []side
}

type side struct {
	lookup map[string]int
}

// count is marked but is not even a struct.
//
//lint:hotpath
type count int
