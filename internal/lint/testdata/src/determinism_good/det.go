// Package det_good is the corrected form of every determinism_bad
// violation; the fixture test asserts the analyzer stays silent.
package det_good

import (
	"math/rand"
	"sort"
)

// Seeded draws from an explicitly seeded generator.
func Seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// SortedKeys collects in map order but sorts before anyone can see it.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CountAll only bumps an integer counter: commutative, order-free.
func CountAll(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// IntSum accumulates integers: associative, order-free.
func IntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Invert writes map elements: set semantics, order-free.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// LocalOnly writes nothing that outlives the loop.
func LocalOnly(m map[string]int) {
	for _, v := range m {
		x := v * 2
		_ = x
	}
}
