// Package reg_good is the drift-free registry fixture.
package reg_good

// Experiment mirrors the real registry entry shape.
type Experiment struct {
	ID    string
	Title string
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

func init() {
	register(Experiment{ID: "E1", Title: "documented"})
}

// B stands in for *testing.B.
type B struct{}

// ReportMetric mirrors the testing.B method the analyzer scans for.
func (*B) ReportMetric(v float64, key string) {}

// BenchmarkAlpha exists, is referenced, and reports the gated metric.
func BenchmarkAlpha(b *B) {
	b.ReportMetric(1, "J/op")
}
