// Package reg_bad mimics the experiments registry idiom with drift in
// every direction: E2 registered but undocumented, E3 documented but
// unregistered, a ghost benchmark in the doc, and a stale baseline.
package reg_bad

// Experiment mirrors the real registry entry shape.
type Experiment struct {
	ID    string
	Title string
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

func init() {
	register(Experiment{ID: "E1", Title: "documented"})
	register(Experiment{ID: "E2", Title: "undocumented"})
}

// B stands in for *testing.B.
type B struct{}

// ReportMetric mirrors the testing.B method the analyzer scans for.
func (*B) ReportMetric(v float64, key string) {}

// BenchmarkAlpha is the one benchmark that really exists.
func BenchmarkAlpha(b *B) {
	b.ReportMetric(1, "J/op")
}
