// Package lint is eimdb's project-specific static-analysis suite: it
// loads every package in the module with go/parser + go/types (standard
// library only — the CI build container has no network, so no
// golang.org/x/tools) and enforces the engine's determinism and
// energy-accounting invariants as machine-checked rules.
//
// The contracts it encodes grew one PR at a time and are otherwise only
// guarded by -race tests that catch violations after they ship:
//
//   - determinism: relations and attributed counters must be
//     byte-identical at every DOP, core budget, and batching setting, so
//     the deterministic packages must not read wall clocks, draw from the
//     global math/rand source, or let map iteration order leak into
//     output (PR 2/PR 5).
//   - meterdiscipline: energy and byte counters may only enter shared
//     accounting through the metered APIs — Ctx.Charge, Meter.Add,
//     FleetMeter — never by writing counter fields stored inside another
//     structure (PR 2).
//   - goroutines: internal/exec spawns workers only inside the
//     runPool/runMorsels helpers, so every worker honors revocable core
//     leases and morsel-boundary cancellation (PR 5).
//   - hotpath: the per-morsel join hot structs stay flat arrays, never Go
//     maps (PR 4).
//   - registrysync: the experiments registry, EXPERIMENTS.md, the root
//     benchmarks, and the committed BENCH_*.json baselines must agree
//     (PR 1/PR 3).
//   - suppress: every //lint:allow escape hatch must name a real check
//     and carry a non-empty reason.
//
// cmd/eimdb-lint is the CLI front end; lint_test.go runs the whole suite
// over this repository inside tier-1 `go test ./...`.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diag is one diagnostic: a position, the check that fired, and a
// human-readable message.
type Diag struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Msg)
}

// Analyzer is one named rule over a loaded Unit.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(u *Unit) []Diag
}

// Config scopes the rules to concrete packages, so fixture tests can
// point the same analyzers at testdata mini-packages.
type Config struct {
	// DetPkgs are the import paths under the determinism contract:
	// no wall-clock reads, no global math/rand, no order-dependent map
	// iteration.
	DetPkgs []string
	// ExecPkgs are the executor packages: `go` statements only inside
	// PoolFuncs, and at least one //lint:hotpath-marked struct must
	// exist (the flat-array contract cannot silently vanish).
	ExecPkgs []string
	// PoolFuncs are the only functions in ExecPkgs allowed to contain
	// `go` statements.
	PoolFuncs []string
	// HotStructs lists, per package, struct names that MUST carry the
	// //lint:hotpath marker: the fused/join kernel structs whose
	// flat-array (map-free) invariant the energy pricing depends on.
	// Unmarking, renaming, or deleting one without updating this roster
	// is a lint error, never a silent contract loss.
	HotStructs map[string][]string
	// EnergyPkg is the package defining Counters/Meter/FleetMeter; it
	// alone may write counter fields through stored structures.
	EnergyPkg string
	// RegistryPkg is the experiments package whose register() calls are
	// the source of truth for E-ids; empty disables registrysync.
	RegistryPkg string
	// RootPkg is the module root package holding bench_test.go.
	RootPkg string
}

// DefaultConfig returns the scoping for this repository.
func DefaultConfig() Config {
	return Config{
		DetPkgs: []string{
			"repro/internal/exec",
			"repro/internal/sched",
			"repro/internal/core",
			"repro/internal/energy",
			"repro/internal/workload",
			"repro/internal/experiments",
			"repro/internal/txn",
			// The serving front end must be a pure function of its Clock:
			// wall time lives only in cmd/eimdb-serve's realClock.
			"repro/internal/server",
			// The writable delta + merge path: snapshot visibility and
			// compaction must replay identically (WAL recovery depends
			// on it).
			"repro/internal/colstore",
			"repro/internal/wal",
		},
		ExecPkgs:  []string{"repro/internal/exec"},
		PoolFuncs: []string{"runPool", "runMorsels"},
		HotStructs: map[string][]string{
			"repro/internal/exec":     {"partChunk", "pairChunk", "joinTable", "fusedAggTable", "seqMerger"},
			"repro/internal/colstore": {"ShardBound"},
		},
		EnergyPkg:   "repro/internal/energy",
		RegistryPkg: "repro/internal/experiments",
		RootPkg:     "repro",
	}
}

// Unit is everything one lint run sees: the loaded packages, the module
// they came from, and the rule scoping.
type Unit struct {
	ModPath string
	Root    string // module root directory (for EXPERIMENTS.md, BENCH_*.json)
	Fset    *token.FileSet
	Pkgs    []*Package
	Config  Config
}

// Pkg returns the loaded package with the given import path, or nil.
func (u *Unit) Pkg(path string) *Package {
	for _, p := range u.Pkgs {
		if p.ImportPath == path && !p.TestVariant {
			return p
		}
	}
	return nil
}

// inDet reports whether the package is under the determinism contract.
func (u *Unit) inDet(p *Package) bool {
	for _, d := range u.Config.DetPkgs {
		if p.ImportPath == d {
			return true
		}
	}
	return false
}

// localType reports whether a package path belongs to the linted code —
// under the module, or one of the loaded (fixture) packages.  Foreign
// types (stdlib) are opaque to the layout checks.
func (u *Unit) localType(path string) bool {
	if path == u.ModPath || strings.HasPrefix(path, u.ModPath+"/") {
		return true
	}
	for _, p := range u.Pkgs {
		if p.ImportPath == path {
			return true
		}
	}
	return false
}

// inExec reports whether the package is an executor package.
func (u *Unit) inExec(p *Package) bool {
	for _, d := range u.Config.ExecPkgs {
		if p.ImportPath == d {
			return true
		}
	}
	return false
}

// All returns every analyzer in the suite, in report order.
func All() []Analyzer {
	return []Analyzer{
		AnalyzerDeterminism(),
		AnalyzerMeterDiscipline(),
		AnalyzerGoroutines(),
		AnalyzerHotPath(),
		AnalyzerRegistrySync(),
		AnalyzerSuppress(),
	}
}

// checkNames returns the set of valid check names (the targets a
// //lint:allow directive may name).
func checkNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// Run executes every analyzer over the unit and returns the surviving
// diagnostics: a diagnostic is dropped when a well-formed //lint:allow
// directive for its check covers its line (same line, or the line the
// directive comment immediately precedes).  Malformed directives —
// empty reason, unknown check — surface as `suppress` diagnostics and
// suppress nothing.
func Run(u *Unit, analyzers []Analyzer) []Diag {
	sup := collectDirectives(u)
	var out []Diag
	for _, a := range analyzers {
		for _, d := range a.Run(u) {
			if a.Name != SuppressCheck && sup.allows(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	return out
}
