package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismCheck is the name of the determinism analyzer.
const DeterminismCheck = "determinism"

// randConstructors are the math/rand functions that build an explicitly
// seeded generator instead of drawing from the process-global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// AnalyzerDeterminism enforces the byte-identical-results contract in
// the deterministic packages (Config.DetPkgs): every relation and every
// attributed counter must come out identical at any DOP, core budget,
// and batching setting, which dies the moment wall clocks, the global
// math/rand source, or map iteration order reach an output.
//
// Rules:
//
//  1. no time.Now, time.Since, or time.Until — wall-clock reads.
//     Simulated time lives in Ctx.SimTime and the virtual-time
//     scheduler; wall-clock display columns need a reasoned
//     //lint:allow.
//  2. no math/rand (or math/rand/v2) package-level draw functions —
//     they use the process-global, run-dependent source.  Explicitly
//     seeded generators (rand.New(rand.NewSource(seed))) and
//     internal/workload's own RNG are fine.
//  3. a `range` over a map whose body writes state that outlives the
//     loop (appends to an outer slice, assigns an outer variable,
//     prints/writes output, sends on a channel) must be followed by a
//     sort call later in the same function, or the iteration order
//     leaks into results.  Commutative updates (integer +=, ++, |=,
//     map-element writes) are exempt; float accumulation is not (FP
//     addition is not associative).
func AnalyzerDeterminism() Analyzer {
	return Analyzer{
		Name: DeterminismCheck,
		Doc:  "deterministic packages must not read wall clocks, use global math/rand, or leak map iteration order",
		Run:  runDeterminism,
	}
}

func runDeterminism(u *Unit) []Diag {
	var out []Diag
	walkFiles(u, u.inDet, func(p *Package, f *ast.File) {
		// funcStack tracks enclosing function bodies so a flagged
		// map-range can look for a later sort in the same function.
		var funcStack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, x)
				ast.Inspect(bodyOf(x), func(m ast.Node) bool {
					if m == nil || m == bodyOf(x) {
						return true
					}
					return walk(m)
				})
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.SelectorExpr:
				if d, ok := checkForbiddenRef(u, p, x); ok {
					out = append(out, d)
				}
			case *ast.RangeStmt:
				if d, ok := checkMapRange(u, p, x, enclosing(funcStack)); ok {
					out = append(out, d)
				}
			}
			return true
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			return walk(n)
		})
	})
	return out
}

// bodyOf returns the body of a FuncDecl or FuncLit (possibly nil).
func bodyOf(n ast.Node) ast.Node {
	switch x := n.(type) {
	case *ast.FuncDecl:
		if x.Body == nil {
			return x
		}
		return x.Body
	case *ast.FuncLit:
		return x.Body
	}
	return n
}

// enclosing returns the innermost function node, or nil at file scope.
func enclosing(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// checkForbiddenRef flags wall-clock and global-rand references.
func checkForbiddenRef(u *Unit, p *Package, sel *ast.SelectorExpr) (Diag, bool) {
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return Diag{}, false
	}
	// Methods are fine: t.Sub(u) is pure arithmetic and r.Intn draws
	// from the receiver's own (seeded) source.  Only the package-level
	// functions reach the wall clock or the global source.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return Diag{}, false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return Diag{
				Pos:   u.Fset.Position(sel.Pos()),
				Check: DeterminismCheck,
				Msg: fmt.Sprintf("time.%s reads the wall clock in a deterministic package; "+
					"use simulated time (Ctx.SimTime, sched virtual time) or //lint:allow %s: <reason>",
					fn.Name(), DeterminismCheck),
			}, true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return Diag{
				Pos:   u.Fset.Position(sel.Pos()),
				Check: DeterminismCheck,
				Msg: fmt.Sprintf("%s.%s draws from the global, run-dependent source; "+
					"use a seeded generator (workload.NewRNG or rand.New(rand.NewSource(seed)))",
					fn.Pkg().Path(), fn.Name()),
			}, true
		}
	}
	return Diag{}, false
}

// checkMapRange flags a map-range loop whose body writes escaping,
// order-sensitive state with no later sort in the enclosing function.
func checkMapRange(u *Unit, p *Package, rng *ast.RangeStmt, fn ast.Node) (Diag, bool) {
	t := p.Info.TypeOf(rng.X)
	if t == nil {
		return Diag{}, false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return Diag{}, false
	}
	write := firstEscapingWrite(p, rng)
	if write == nil {
		return Diag{}, false
	}
	if fn != nil && hasLaterSort(p, fn, rng.End()) {
		return Diag{}, false
	}
	return Diag{
		Pos:   u.Fset.Position(rng.For),
		Check: DeterminismCheck,
		Msg: fmt.Sprintf("map iteration order leaks into state written at line %d; "+
			"sort after the loop, collect keys and sort first, or //lint:allow %s: <reason>",
			u.Fset.Position(write.Pos()).Line, DeterminismCheck),
	}, true
}

// firstEscapingWrite returns the first statement in the loop body that
// writes order-sensitive state declared outside the loop, or nil.
func firstEscapingWrite(p *Package, rng *ast.RangeStmt) ast.Node {
	var found ast.Node
	declaredInside := func(id *ast.Ident) bool {
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			return true // blank or unresolved: not an escape
		}
		return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if escapingLhs(p, lhs, x.Tok, declaredInside) {
					found = x
					return false
				}
			}
		case *ast.IncDecStmt:
			if escapingLhs(p, x.X, token.ADD_ASSIGN, declaredInside) {
				found = x
				return false
			}
		case *ast.SendStmt:
			found = x
			return false
		case *ast.CallExpr:
			if isOutputCall(p, x, declaredInside) {
				found = x
				return false
			}
		}
		return true
	})
	return found
}

// escapingLhs reports whether assigning lhs with tok leaks iteration
// order outside the loop.  declaredInside reports whether an identifier
// is loop-local.
func escapingLhs(p *Package, lhs ast.Expr, tok token.Token, declaredInside func(*ast.Ident) bool) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	root := rootIdent(lhs)
	if root == nil || declaredInside(root) {
		return false
	}
	// Map-element writes have set semantics: each distinct key lands in
	// its slot whatever the order.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if xt := p.Info.TypeOf(ix.X); xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				return false
			}
		}
	}
	// Commutative, associative updates are order-independent on
	// integers; float accumulation is not (FP addition does not
	// associate), and string += concatenates in iteration order.
	switch tok {
	case token.ADD_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		if t := p.Info.TypeOf(lhs); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return false
			}
		}
	}
	return true
}

// isOutputCall reports whether the call prints or writes output: any
// fmt.Print*/Fprint*, or a Write*/Print* method on a receiver declared
// outside the loop.
func isOutputCall(p *Package, call *ast.CallExpr, declaredInside func(*ast.Ident) bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return hasPrefix(fn.Name(), "Print") || hasPrefix(fn.Name(), "Fprint")
	}
	name := sel.Sel.Name
	if !(hasPrefix(name, "Write") || hasPrefix(name, "Print")) {
		return false
	}
	root := rootIdent(sel.X)
	return root != nil && !declaredInside(root)
}

func hasPrefix(s, pre string) bool { return len(s) >= len(pre) && s[:len(pre)] == pre }

// hasLaterSort reports whether fn's body calls into package sort or a
// slices.Sort* function after pos.
func hasLaterSort(p *Package, fn ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(bodyOf(fn), func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil {
			switch f.Pkg().Path() {
			case "sort":
				found = true
			case "slices":
				if hasPrefix(f.Name(), "Sort") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// rootIdent strips selectors, indexes, stars, and parens down to the
// base identifier of an lvalue (nil when the base is not an
// identifier, e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}
