package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MeterCheck is the name of the meter-discipline analyzer.
const MeterCheck = "meterdiscipline"

// AnalyzerMeterDiscipline enforces the energy-accounting boundary:
// outside Config.EnergyPkg, a write to a field of energy.Counters (or
// energy.Breakdown) is legal only while building a function-local
// counters value that will be handed to a metered API — Ctx.Charge,
// Meter.Add, FleetMeter.  Writing counter fields through anything else
// (a struct holding counters, a slice or map element, a package-level
// variable, a pointer returned by a call) mutates shared accounting
// state behind the meter's back, which is exactly how attributed bills
// and the physical book drift apart.
//
// Concretely: `w.TuplesIn += n` is fine when w is a local
// energy.Counters (or *energy.Counters) variable or parameter;
// `rep.Work.TuplesIn += n`, `partials[i].BytesReadDRAM = n`, and
// writes to package-level counters are diagnostics.
func AnalyzerMeterDiscipline() Analyzer {
	return Analyzer{
		Name: MeterCheck,
		Doc:  "energy counters are mutated only via Ctx.Charge/Meter/FleetMeter or on function-local values",
		Run:  runMeterDiscipline,
	}
}

func runMeterDiscipline(u *Unit) []Diag {
	var out []Diag
	keep := func(p *Package) bool {
		return u.Config.EnergyPkg != "" && p.ImportPath != u.Config.EnergyPkg
	}
	walkFiles(u, keep, func(p *Package, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if d, ok := checkCounterWrite(u, p, lhs); ok {
						out = append(out, d)
					}
				}
			case *ast.IncDecStmt:
				if d, ok := checkCounterWrite(u, p, x.X); ok {
					out = append(out, d)
				}
			case *ast.UnaryExpr:
				// &c.Field would launder the write through a pointer.
				if x.Op == token.AND {
					if d, ok := checkCounterWrite(u, p, x.X); ok {
						d.Msg = "taking the address of an energy counter field escapes the meter discipline; " +
							"pass whole Counters values and merge with Meter.Add"
						out = append(out, d)
					}
				}
			}
			return true
		})
	})
	return out
}

// counterStruct reports whether t is energy.Counters or energy.Breakdown
// from the configured energy package.
func counterStruct(u *Unit, t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != u.Config.EnergyPkg {
		return false
	}
	return obj.Name() == "Counters" || obj.Name() == "Breakdown"
}

// checkCounterWrite flags lhs when it is a selector writing a field of
// energy.Counters/Breakdown through anything but a function-local
// variable of that type.
func checkCounterWrite(u *Unit, p *Package, lhs ast.Expr) (Diag, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return Diag{}, false
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return Diag{}, false
	}
	recv := s.Recv()
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	if !counterStruct(u, recv) {
		return Diag{}, false
	}
	// The base must be a plain identifier naming a function-local
	// variable (or parameter) whose own type is (a pointer to) the
	// counters struct — i.e. selector depth exactly one.
	if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
		if v, isVar := p.Info.ObjectOf(id).(*types.Var); isVar && !isPackageLevel(v) {
			vt := v.Type()
			if ptr, isPtr := vt.Underlying().(*types.Pointer); isPtr {
				vt = ptr.Elem()
			}
			if counterStruct(u, vt) {
				return Diag{}, false
			}
		}
	}
	return Diag{
		Pos:   u.Fset.Position(sel.Pos()),
		Check: MeterCheck,
		Msg: fmt.Sprintf("field %s of energy.%s is written through a non-local path; "+
			"counters stored in shared structures may only change via Ctx.Charge/Meter.Add/FleetMeter "+
			"(build a local Counters value and merge it)",
			s.Obj().Name(), recv.(*types.Named).Obj().Name()),
	}, true
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
