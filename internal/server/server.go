// Package server is eimdb's online SQL serving front end: an HTTP/JSON
// door onto core.Engine's incremental scheduling loop (core.Loop), the
// piece that turns the one-shot batch Drain into continuously served
// open-loop traffic — arrivals, admission control, shared-scan batching
// of queued lookalikes, revocable-lease resizes, and completions all
// interleave per request.
//
// Endpoints (versioned under /v1; the original unversioned paths remain
// as deprecated aliases that answer identically plus Deprecation/Link
// headers pointing at their successors):
//
//	POST /v1/query   {"sql": "...", "objective": "min-energy", "client": "key"}
//	POST /v1/write   {"sql": "INSERT|UPDATE|DELETE ...", "client": "key"}
//	GET  /v1/stats   plan-cache counters, energy books, per-client budgets
//	GET  /v1/healthz liveness
//
// Every error response, on every route and both path versions, carries
// one envelope: {"error":{"code":"...","message":"...","retry_after_s":N}}
// (retry_after_s only on 429s, mirroring the Retry-After header).
//
// Writes execute synchronously at their arrival instant — INSERT appends
// to the table's delta, UPDATE/DELETE tombstone through MVCC — and are
// admission-gated by the same per-client budgets as queries, charging
// the catalog-statistics estimate (opt.EstimateDML).  Once a table's
// delta passes Config.MergeDeltaRows, the server offers a background
// merge-as-a-query (core.Loop.OfferMerge): an energy-priced compaction
// ticket that waits behind foreground traffic and re-seals the delta.
// DML and completed merges invalidate the plan cache (statistics and
// access paths may have shifted).
//
// Time discipline: the server never reads a wall clock — all timing
// flows through the Clock interface, so tests drive a SimClock and the
// whole front end becomes a deterministic discrete-event simulation
// (fixed seed + fixed arrival script ⇒ byte-identical response bodies
// and attributed energy books at every core budget and batching
// setting).  Response BODIES therefore carry only schedule-invariant
// facts: the relation, the attributed work counters, and the per-query
// energy bill.  Schedule-dependent facts (latency, DOP, group size,
// sharing, cache outcome) travel as X-Eimdb-* response headers.
//
// Per-client energy budgets charge the PLAN ESTIMATE at admission, not
// the measured bill at completion: admission outcomes then depend only
// on the arrival script, never on completion timing, which keeps
// 402-style rejections deterministic across core budgets.  The measured
// spend is still tracked per client in /stats.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/sql"
)

// Config parameterizes New.
type Config struct {
	// Sched is the multi-query scheduler configuration the loop runs
	// under (core budget, queue depth, batching, arbitration).
	Sched core.SchedulerConfig
	// Objective is the default optimizer objective for requests that do
	// not name one.
	Objective opt.Objective
	// Clients is the API-key → attributed-energy allowance table.
	// Requests carrying a key (X-API-Key header or "client" field) are
	// admitted only while the client's committed estimates fit its
	// allowance; past it they are rejected 402-style.  Requests with no
	// key are anonymous and unmetered; unknown keys are 401s.
	Clients map[string]energy.Joules
	// MergeDeltaRows is the delta-row threshold past which a write
	// triggers a background merge offer for its table (0 disables
	// auto-merge; merges can then only come from explicit harness calls).
	MergeDeltaRows int
}

// planEntry is one cached prepared statement: a plan node (re-runnable,
// never concurrently) plus the planner's report, keyed by objective and
// by both the raw text and the ShareSig canonical signature.
type planEntry struct {
	node exec.Node
	info *opt.PlanInfo
}

// clientBook is one API key's energy account.
type clientBook struct {
	allowance   energy.Joules
	committed   energy.Joules // plan estimates charged at admission
	spent       energy.Joules // measured attributed bills at completion
	rejected402 uint64
}

// pending is one admitted request awaiting its virtual completion.
type pending struct {
	client string
	ch     chan *core.Ticket // nil: nobody waits (replay, canceled)
}

// Server is the HTTP front end.  It implements http.Handler.
type Server struct {
	clock Clock
	mux   *http.ServeMux

	mu       sync.Mutex
	eng      *core.Engine
	loop     *core.Loop
	cfg      Config
	texts    map[string]*planEntry // objective|raw text → entry
	sigs     map[string]*planEntry // objective|ShareSig → entry
	textHits uint64
	sigHits  uint64
	misses   uint64
	clients  map[string]*clientBook
	inflight map[int]*pending
	merging  map[string]bool // tables with an offered, unfinished merge
	writes   uint64          // DML statements applied
	merges   uint64          // background merges completed
}

// New builds a server over an engine whose tables are loaded and
// sealed.  The clock is the server's only source of time.
func New(eng *core.Engine, cfg Config, clock Clock) *Server {
	s := &Server{
		clock:    clock,
		eng:      eng,
		loop:     eng.NewLoop(cfg.Sched),
		cfg:      cfg,
		texts:    make(map[string]*planEntry),
		sigs:     make(map[string]*planEntry),
		clients:  make(map[string]*clientBook),
		inflight: make(map[int]*pending),
		merging:  make(map[string]bool),
	}
	s.mux = http.NewServeMux()
	for _, r := range []struct {
		path string
		h    http.HandlerFunc
	}{
		{"/query", s.handleQuery},
		{"/write", s.handleWrite},
		{"/stats", s.handleStats},
		{"/healthz", s.handleHealthz},
	} {
		s.mux.HandleFunc("/v1"+r.path, r.h)
		s.mux.HandleFunc(r.path, deprecatedAlias(r.path, r.h))
	}
	return s
}

// deprecatedAlias keeps the original unversioned paths answering
// identically while steering clients to /v1 via RFC 8594 Deprecation
// and successor-version Link headers.
func deprecatedAlias(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", path))
		h(w, r)
	}
}

// ServeHTTP dispatches to the server's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL       string `json:"sql"`
	Objective string `json:"objective,omitempty"`
	Client    string `json:"client,omitempty"`
}

// queryResponse is the 200 body: schedule-invariant facts only, so the
// bytes are identical at every core budget and batching setting.
type queryResponse struct {
	ID        int             `json:"id"`
	Objective string          `json:"objective"`
	Columns   []string        `json:"columns"`
	Rows      [][]any         `json:"rows"`
	Work      energy.Counters `json:"work"`
	Energy    responseEnergy  `json:"energy"`
}

type responseEnergy struct {
	Joules    float64          `json:"joules"`
	Breakdown energy.Breakdown `json:"breakdown"`
}

// reqError is an admission-path failure with its HTTP mapping.
type reqError struct {
	status     int
	code       string
	msg        string
	retryAfter int // seconds; > 0 adds a Retry-After header
}

// errEnvelope is the one error shape every route returns, on both path
// versions: {"error":{"code","message","retry_after_s?"}}.  Machine
// retry logic keys on code; message is for humans.
type errEnvelope struct {
	Error errDetail `json:"error"`
}

type errDetail struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// errBody renders the uniform error payload.
func errBody(code, msg string, retryAfter int) []byte {
	b, _ := json.Marshal(errEnvelope{Error: errDetail{Code: code, Message: msg, RetryAfterS: retryAfter}})
	return append(b, '\n')
}

// parseObjective maps a request's objective name (empty = the server
// default) onto the optimizer objective.
func (s *Server) parseObjective(name string) (opt.Objective, bool) {
	switch name {
	case "":
		return s.cfg.Objective, true
	case opt.MinTime.String():
		return opt.MinTime, true
	case opt.MinEnergy.String():
		return opt.MinEnergy, true
	case opt.MinEDP.String():
		return opt.MinEDP, true
	}
	return 0, false
}

// lookupLocked resolves text+objective through the two-level plan
// cache: exact text (skips parse and plan) first, then the ShareSig
// canonical signature (skips plan — differently spelled but
// canonically equal queries share one prepared plan), then a full
// parse+plan miss that fills both levels.
func (s *Server) lookupLocked(text string, obj opt.Objective) (*planEntry, bool, error) {
	tkey := obj.String() + "|" + text
	if e := s.texts[tkey]; e != nil {
		s.textHits++
		return e, true, nil
	}
	q, err := sql.Parse(text)
	if err != nil {
		return nil, false, err
	}
	skey := obj.String() + "|" + q.String()
	if e := s.sigs[skey]; e != nil {
		s.sigHits++
		s.texts[tkey] = e
		return e, true, nil
	}
	node, info, err := s.eng.Plan(q, obj)
	if err != nil {
		return nil, false, err
	}
	s.misses++
	e := &planEntry{node: node, info: info}
	s.texts[tkey] = e
	s.sigs[skey] = e
	return e, false, nil
}

// retryAfterSeconds derives the 429 Retry-After hint from the
// virtual-time backlog: the admitted serial CPU seconds still owed,
// spread over the core budget, rounded up (floor 1s).
func retryAfterSeconds(backlog time.Duration, budget int) int {
	if budget < 1 {
		budget = 1
	}
	secs := int((backlog + time.Duration(budget)*time.Second - 1) / (time.Duration(budget) * time.Second))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// bookLocked resolves a client's energy account and checks the estimate
// against its remaining allowance: nil book for anonymous requests, 401
// for unknown keys, 402 once the committed sum would overflow.  The
// caller commits the estimate only after its own admission succeeds.
func (s *Server) bookLocked(client string, est energy.Joules) (*clientBook, *reqError) {
	if client == "" {
		return nil, nil
	}
	book := s.clients[client]
	if book == nil {
		allowance, known := s.cfg.Clients[client]
		if !known {
			return nil, &reqError{status: http.StatusUnauthorized, code: "unknown_api_key",
				msg: fmt.Sprintf("unknown api key %q", client)}
		}
		book = &clientBook{allowance: allowance}
		s.clients[client] = book
	}
	if book.committed+est > book.allowance {
		book.rejected402++
		return nil, &reqError{status: http.StatusPaymentRequired, code: "energy_budget_exhausted",
			msg: fmt.Sprintf("energy budget exhausted: committed %.6g J of %.6g J allowance, request needs %.6g J",
				float64(book.committed), float64(book.allowance), float64(est))}
	}
	return book, nil
}

// admitLocked runs the admission pipeline for one arrival at virtual
// time `at`: objective resolution, plan-cache lookup (400 on parse or
// plan failure), per-client budget check (402-style on exhaustion),
// then the scheduler's own admission (429 + Retry-After on queue
// overflow).  The client's estimate is committed only after the
// scheduler accepts.  Callers must invoke React (directly or via
// deliverLocked flows) after the last offer of an instant.
func (s *Server) admitLocked(at time.Duration, client, text, objName string) (*core.Ticket, bool, *reqError) {
	obj, ok := s.parseObjective(objName)
	if !ok {
		return nil, false, &reqError{status: http.StatusBadRequest, code: "bad_request",
			msg: fmt.Sprintf("unknown objective %q (want min-time, min-energy, or min-edp)", objName)}
	}
	entry, hit, err := s.lookupLocked(text, obj)
	if err != nil {
		return nil, false, &reqError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
	}
	book, rerr := s.bookLocked(client, entry.info.Est.Energy)
	if rerr != nil {
		return nil, hit, rerr
	}
	t := s.loop.OfferPlanned(at, entry.node, entry.info, obj)
	if t.Rejected {
		return nil, hit, &reqError{status: http.StatusTooManyRequests, code: "queue_full",
			msg:        "admission queue full",
			retryAfter: retryAfterSeconds(s.loop.Backlog(), s.cfg.Sched.Budget)}
	}
	if book != nil {
		book.committed += entry.info.Est.Energy
	}
	return t, hit, nil
}

// invalidatePlansLocked drops every cached plan: after a write or a
// merge the catalog statistics (and possibly the winning access paths)
// have shifted, so cached nodes would run with stale estimates.  Hit
// counters survive — they describe lookups, not entries.
func (s *Server) invalidatePlansLocked() {
	s.texts = make(map[string]*planEntry)
	s.sigs = make(map[string]*planEntry)
}

// deliverLocked settles completed tickets: credits client spend, wakes
// any waiting handler, and retires the inflight entry.  Completed merge
// tickets retire their table's in-progress mark and invalidate the plan
// cache (the re-sealed layout re-prices every access path).
func (s *Server) deliverLocked(done []*core.Ticket) {
	for _, t := range done {
		if t.IsMerge {
			delete(s.merging, t.MergeTable)
			if t.Err == nil {
				s.merges++
				s.invalidatePlansLocked()
			}
			continue
		}
		p := s.inflight[t.ID]
		if p == nil {
			continue
		}
		delete(s.inflight, t.ID)
		if p.client != "" && t.Err == nil {
			s.clients[p.client].spent += t.Energy.Total()
		}
		if p.ch != nil {
			p.ch <- t
		}
	}
}

// pumpLocked arms the clock for the next scheduled completion.  Stale
// or duplicate wakes are harmless: onWake re-derives everything from
// the loop.
func (s *Server) pumpLocked() {
	if f, ok := s.loop.NextFinish(); ok {
		s.clock.Schedule(f, s.onWake)
	}
}

// onWake advances the loop to the clock and settles whatever finished.
func (s *Server) onWake() {
	now := s.clock.Now()
	s.mu.Lock()
	s.deliverLocked(s.loop.AdvanceTo(now))
	s.pumpLocked()
	s.mu.Unlock()
}

// renderTicket turns a settled ticket into its HTTP status and body.
func renderTicket(t *core.Ticket) (int, []byte) {
	if t.Err != nil {
		return http.StatusInternalServerError, errBody("internal", t.Err.Error(), 0)
	}
	resp := queryResponse{
		ID:        t.ID,
		Objective: t.Objective.String(),
		Columns:   t.Rel.ColNames(),
		Rows:      make([][]any, 0, t.Rel.N),
		Work:      t.Work,
		Energy:    responseEnergy{Joules: float64(t.Energy.Total()), Breakdown: t.Energy},
	}
	for r := 0; r < t.Rel.N; r++ {
		resp.Rows = append(resp.Rows, t.Rel.Row(r))
	}
	b, _ := json.Marshal(resp)
	return http.StatusOK, append(b, '\n')
}

// writeJSON writes a response body with its status.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeReqError(w http.ResponseWriter, e *reqError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.retryAfter))
	}
	writeJSON(w, e.status, errBody(e.code, e.msg, e.retryAfter))
}

// handleQuery is the serving hot path: decode, advance the loop to the
// arrival instant, admit, react, then park until the virtual machine
// completes the query (or the request context cancels the lease).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errBody("method_not_allowed", "POST only", 0))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad_request", "bad request body: "+err.Error(), 0))
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errBody("bad_request", "missing sql", 0))
		return
	}
	client := r.Header.Get("X-API-Key")
	if client == "" {
		client = req.Client
	}
	now := s.clock.Now() // sampled before s.mu: the clock may not be read under it

	s.mu.Lock()
	s.deliverLocked(s.loop.AdvanceTo(now))
	t, hit, rerr := s.admitLocked(now, client, req.SQL, req.Objective)
	if rerr != nil {
		s.deliverLocked(s.loop.React())
		s.pumpLocked()
		s.mu.Unlock()
		writeReqError(w, rerr)
		return
	}
	ch := make(chan *core.Ticket, 1)
	s.inflight[t.ID] = &pending{client: client, ch: ch}
	s.deliverLocked(s.loop.React())
	s.pumpLocked()
	s.mu.Unlock()

	select {
	case t = <-ch:
	case <-r.Context().Done():
		// The client went away: revoke the lease (running operators
		// stop at the next morsel boundary) and abandon the response.
		s.mu.Lock()
		if p := s.inflight[t.ID]; p != nil {
			p.ch = nil
			t.Cancel()
		}
		s.mu.Unlock()
		return
	}
	status, body := renderTicket(t)
	w.Header().Set("X-Eimdb-Latency", t.Latency.String())
	w.Header().Set("X-Eimdb-Dop", fmt.Sprintf("%d", t.DOP))
	w.Header().Set("X-Eimdb-Group-Size", fmt.Sprintf("%d", t.GroupSize))
	w.Header().Set("X-Eimdb-Shared", fmt.Sprintf("%t", t.Shared))
	w.Header().Set("X-Eimdb-Cache", cacheLabel(hit))
	writeJSON(w, status, body)
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	VirtualNowNS int64                  `json:"virtual_now_ns"`
	Queued       int                    `json:"queued"`
	Running      int                    `json:"running"`
	Completed    int                    `json:"completed"`
	Rejected     int                    `json:"rejected"`
	Writes       uint64                 `json:"writes"`
	Merges       uint64                 `json:"merges"`
	PlanCache    statsCache             `json:"plan_cache"`
	Energy       statsEnergy            `json:"energy"`
	Work         statsWork              `json:"work"`
	Clients      map[string]statsClient `json:"clients"`
}

type statsCache struct {
	Hits     uint64 `json:"hits"`
	TextHits uint64 `json:"text_hits"`
	SigHits  uint64 `json:"sig_hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
}

type statsEnergy struct {
	// AttributedDynamicJ is the sum of every completed query's
	// standalone dynamic bill; FleetDynamicJ prices the work physically
	// performed (shared groups charged once).  The gap is exactly
	// SavedDynamicJ — the shared-scan batching saving.
	AttributedDynamicJ float64 `json:"attributed_dynamic_j"`
	FleetDynamicJ      float64 `json:"fleet_dynamic_j"`
	SavedDynamicJ      float64 `json:"saved_dynamic_j"`
	StaticJ            float64 `json:"static_j"`
	FleetJ             float64 `json:"fleet_j"`
}

type statsWork struct {
	Attributed energy.Counters `json:"attributed"`
	Physical   energy.Counters `json:"physical"`
}

type statsClient struct {
	AllowanceJ  float64 `json:"allowance_j"`
	CommittedJ  float64 `json:"committed_j"`
	SpentJ      float64 `json:"spent_j"`
	Rejected402 uint64  `json:"rejected_402"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errBody("method_not_allowed", "GET only", 0))
		return
	}
	s.mu.Lock()
	rep := s.loop.Report()
	resp := statsResponse{
		VirtualNowNS: int64(s.loop.Now()),
		Queued:       s.loop.Queued(),
		Running:      s.loop.Running(),
		Completed:    rep.Fleet.Completed,
		Rejected:     rep.Fleet.Rejected,
		Writes:       s.writes,
		Merges:       s.merges,
		PlanCache: statsCache{
			Hits:     s.textHits + s.sigHits,
			TextHits: s.textHits,
			SigHits:  s.sigHits,
			Misses:   s.misses,
			Entries:  len(s.sigs),
		},
		Energy: statsEnergy{
			AttributedDynamicJ: float64(rep.FleetDynamic + rep.SavedDynamic),
			FleetDynamicJ:      float64(rep.FleetDynamic),
			SavedDynamicJ:      float64(rep.SavedDynamic),
			StaticJ:            float64(rep.Fleet.Static),
			FleetJ:             float64(rep.FleetEnergy()),
		},
		Work:    statsWork{Attributed: rep.Attributed, Physical: rep.Physical},
		Clients: make(map[string]statsClient, len(s.clients)),
	}
	for key, b := range s.clients {
		resp.Clients[key] = statsClient{
			AllowanceJ:  float64(b.allowance),
			CommittedJ:  float64(b.committed),
			SpentJ:      float64(b.spent),
			Rejected402: b.rejected402,
		}
	}
	s.mu.Unlock()
	b, _ := json.Marshal(resp) // map keys marshal sorted: deterministic bytes
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}
