package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sql"
	"repro/internal/txn"
)

// POST /v1/write is the DML door: INSERT appends to the target table's
// delta, UPDATE/DELETE tombstone through MVCC, and everything commits
// through the REDO log's group-commit window at the arrival instant.
// Writes are admission-gated by the same per-client energy budgets as
// queries — charging the catalog-statistics estimate, never the
// measured bill, so 402s stay schedule-invariant — and a table whose
// delta grows past Config.MergeDeltaRows gets a background merge
// offered on its behalf.

// writeRequest is the POST /v1/write body.
type writeRequest struct {
	SQL    string `json:"sql"`
	Client string `json:"client,omitempty"`
}

// writeResponse is the 200 body: schedule-invariant facts only (commit
// timestamps are logical).  Flush outcome and latency depend on how the
// arrival landed in the group-commit window, so they travel as
// X-Eimdb-* headers like every other schedule-dependent fact.
type writeResponse struct {
	Stmt    string          `json:"stmt"` // canonical SQL
	Kind    string          `json:"kind"`
	Table   string          `json:"table"`
	Matched int             `json:"matched"`
	Applied int             `json:"applied"`
	TS      int64           `json:"ts"`
	Work    energy.Counters `json:"work"`
	Energy  responseEnergy  `json:"energy"`
}

// isWriteStmt reports whether the statement's leading verb is DML —
// the replay router's cheap dispatch (the full parse happens inside
// execWriteLocked).
func isWriteStmt(text string) bool {
	f := strings.Fields(text)
	if len(f) == 0 {
		return false
	}
	switch strings.ToLower(f[0]) {
	case "insert", "update", "delete":
		return true
	}
	return false
}

// execWriteLocked runs the write pipeline for one arrival at virtual
// time `at`: parse (400), estimate + per-client budget gate (401/402),
// synchronous execution through MVCC and the WAL (409 on conflict),
// books, plan-cache invalidation, and the auto-merge check.
func (s *Server) execWriteLocked(at time.Duration, client, text string) (*core.DMLResult, *reqError) {
	st, err := sql.ParseStmt(text)
	if err != nil {
		return nil, &reqError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
	}
	if st.DML == nil {
		return nil, &reqError{status: http.StatusBadRequest, code: "bad_request",
			msg: "read statement on the write endpoint; POST SELECTs to /v1/query"}
	}
	est, err := s.eng.EstimateDML(st.DML)
	if err != nil {
		return nil, &reqError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
	}
	book, rerr := s.bookLocked(client, est.Energy)
	if rerr != nil {
		return nil, rerr
	}
	res, err := s.eng.ExecDML(st.DML, at)
	if err != nil {
		if errors.Is(err, txn.ErrConflict) {
			return nil, &reqError{status: http.StatusConflict, code: "conflict", msg: err.Error()}
		}
		return nil, &reqError{status: http.StatusBadRequest, code: "bad_request", msg: err.Error()}
	}
	if book != nil {
		book.committed += est.Energy
		book.spent += res.Energy.Total()
	}
	s.writes++
	s.invalidatePlansLocked()
	s.maybeMergeLocked(at, st.DML.Table)
	return res, nil
}

// maybeMergeLocked offers a background merge for the table once its
// delta passes the configured threshold, at most one in flight per
// table.  A rejected offer (full queue) is dropped — the next write
// retries.
func (s *Server) maybeMergeLocked(at time.Duration, table string) {
	if s.cfg.MergeDeltaRows <= 0 || s.merging[table] {
		return
	}
	t, err := s.eng.Catalog().Table(table)
	if err != nil || t.DeltaRows() < s.cfg.MergeDeltaRows {
		return
	}
	if tk := s.loop.OfferMerge(at, table); !tk.Rejected {
		s.merging[table] = true
	}
}

// renderWrite turns an executed write into its HTTP status and body.
func renderWrite(res *core.DMLResult) (int, []byte) {
	resp := writeResponse{
		Stmt:    res.Stmt,
		Kind:    res.Kind.String(),
		Table:   res.Table,
		Matched: res.Matched,
		Applied: res.Applied,
		TS:      res.TS,
		Work:    res.Work,
		Energy:  responseEnergy{Joules: float64(res.Joules()), Breakdown: res.Energy},
	}
	b, _ := json.Marshal(resp)
	return http.StatusOK, append(b, '\n')
}

// handleWrite is the write hot path: decode, advance the loop to the
// arrival instant, execute synchronously, react (a threshold crossing
// may have queued a merge), respond.  No parking: DML completes at its
// own arrival instant.
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errBody("method_not_allowed", "POST only", 0))
		return
	}
	var req writeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad_request", "bad request body: "+err.Error(), 0))
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errBody("bad_request", "missing sql", 0))
		return
	}
	client := r.Header.Get("X-API-Key")
	if client == "" {
		client = req.Client
	}
	now := s.clock.Now() // sampled before s.mu: the clock may not be read under it

	s.mu.Lock()
	s.deliverLocked(s.loop.AdvanceTo(now))
	res, rerr := s.execWriteLocked(now, client, req.SQL)
	s.deliverLocked(s.loop.React())
	s.pumpLocked()
	s.mu.Unlock()

	if rerr != nil {
		writeReqError(w, rerr)
		return
	}
	status, body := renderWrite(res)
	w.Header().Set("X-Eimdb-Latency", res.Latency.String())
	w.Header().Set("X-Eimdb-Flushed", fmt.Sprintf("%t", res.Flushed))
	writeJSON(w, status, body)
}
