package server

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Played is one scripted arrival's outcome: the HTTP status and the
// exact response body bytes the live handler would have written (plus
// the Retry-After hint for 429s).  Because bodies carry only
// schedule-invariant facts, a completed query's Played is byte-
// identical at every core budget and batching setting — the serving
// determinism contract E22 asserts.
type Played struct {
	Status     int
	RetryAfter int // seconds; set on 429 only
	Body       string
}

// Replay drives a workload script through the full serving pipeline —
// plan cache, per-client budgets, queue admission, shared-scan
// batching, execution at virtual completion — without goroutines or
// HTTP framing: arrivals are offered at their scripted virtual times
// and the loop advances event by event.  DML arrivals route through the
// write pipeline (synchronous execution, budget gate, auto-merge
// offers), so a mixed script exercises reads over a moving delta with
// background merges interleaved.  It is the deterministic
// harness behind E22 and the serving benchmark; the httptest paths
// cover the same pipeline through real net/http.  Replay drives the
// loop directly (the Clock is not consulted), so it must not be
// interleaved with live HTTP traffic on the same server.
func (s *Server) Replay(script *workload.Script) []Played {
	out := make([]Played, len(script.Arrivals))
	idx := make(map[int]int, len(script.Arrivals))
	settle := func(done []*core.Ticket) {
		s.deliverLocked(done) // client spend books
		for _, t := range done {
			if i, ok := idx[t.ID]; ok {
				status, body := renderTicket(t)
				out[i] = Played{Status: status, Body: string(body)}
			}
		}
	}
	for i, a := range script.Arrivals {
		s.mu.Lock()
		settle(s.loop.AdvanceTo(a.At))
		if isWriteStmt(a.SQL) {
			// DML completes synchronously at its arrival instant; only
			// the merge it may trigger flows through the scheduler.
			res, rerr := s.execWriteLocked(a.At, a.Client, a.SQL)
			if rerr != nil {
				out[i] = Played{Status: rerr.status, RetryAfter: rerr.retryAfter,
					Body: string(errBody(rerr.code, rerr.msg, rerr.retryAfter))}
			} else {
				status, body := renderWrite(res)
				out[i] = Played{Status: status, Body: string(body)}
			}
		} else {
			t, _, rerr := s.admitLocked(a.At, a.Client, a.SQL, "")
			if rerr != nil {
				out[i] = Played{Status: rerr.status, RetryAfter: rerr.retryAfter,
					Body: string(errBody(rerr.code, rerr.msg, rerr.retryAfter))}
			} else {
				idx[t.ID] = i
				s.inflight[t.ID] = &pending{client: a.Client}
			}
		}
		settle(s.loop.React())
		s.mu.Unlock()
	}
	s.mu.Lock()
	settle(s.loop.RunToIdle())
	s.mu.Unlock()
	return out
}
