package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
)

// startDriver advances the virtual clock in the background so parked
// handlers reach their completions — the live-traffic stand-in for
// Replay's event loop.  Wall time is only a pacing device; nothing
// asserts on it.
func startDriver(sc *SimClock) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			sc.Advance(sc.Now() + time.Second)
			time.Sleep(time.Millisecond)
		}
	}()
	return func() { close(done); wg.Wait() }
}

func getStats(t *testing.T, base string) statsResponse {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHTTPSmokePlanCacheHit exercises the real net/http path end to
// end: healthz, a cold query (cache miss), the identical query again
// (cache hit, same schedule-invariant payload), and the /stats
// counters that witnessed it.
func TestHTTPSmokePlanCacheHit(t *testing.T) {
	s, sc := testServer(t, core.SchedulerConfig{Budget: 4, BatchScans: true, Arbitrate: true}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	stop := startDriver(sc)
	defer stop()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	const q = `{"sql":"SELECT COUNT(*), SUM(amount) FROM orders WHERE custkey = 9"}`
	post := func() (*http.Response, queryResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /query: %d %s", resp.StatusCode, raw)
		}
		var qr queryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("bad response body %q: %v", raw, err)
		}
		return resp, qr
	}
	r1, q1 := post()
	if got := r1.Header.Get("X-Eimdb-Cache"); got != "miss" {
		t.Fatalf("first query X-Eimdb-Cache = %q, want miss", got)
	}
	r2, q2 := post()
	if got := r2.Header.Get("X-Eimdb-Cache"); got != "hit" {
		t.Fatalf("second identical query X-Eimdb-Cache = %q, want hit", got)
	}
	if q1.ID == q2.ID {
		t.Fatalf("both responses claim id %d", q1.ID)
	}
	q1.ID = 0
	q2.ID = 0
	if !reflect.DeepEqual(q1, q2) {
		t.Fatalf("identical queries returned different payloads:\n%+v\n%+v", q1, q2)
	}
	st := getStats(t, ts.URL)
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 1 || st.PlanCache.Entries != 1 {
		t.Fatalf("plan cache counters %+v, want 1 miss / 1 hit / 1 entry", st.PlanCache)
	}
	if st.Completed != 2 || st.Rejected != 0 {
		t.Fatalf("completed=%d rejected=%d, want 2/0", st.Completed, st.Rejected)
	}
}

// TestHTTPQueueOverflow429: with one core, queue depth one, and the
// virtual clock frozen, two parked queries fill the machine and the
// third distinct query is turned away 429 with a Retry-After header.
func TestHTTPQueueOverflow429(t *testing.T) {
	s, sc := testServer(t, core.SchedulerConfig{Budget: 1, QueueDepth: 1, Arbitrate: true}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(key int) (*http.Response, string) {
		body := fmt.Sprintf(`{"sql":"SELECT COUNT(*) FROM orders WHERE custkey = %d"}`, key)
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return nil, ""
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(raw)
	}
	parked := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		go func(key int) {
			resp, _ := post(key)
			if resp != nil {
				parked <- resp.StatusCode
			}
		}(i)
		for getStats(t, ts.URL).Running+getStats(t, ts.URL).Queued < i {
			time.Sleep(time.Millisecond)
		}
	}
	resp, body := post(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow query: %d %s, want 429", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After header %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	sc.Advance(time.Hour) // release the two parked queries
	for i := 0; i < 2; i++ {
		if code := <-parked; code != http.StatusOK {
			t.Fatalf("parked query finished with %d", code)
		}
	}
}

// TestHTTPClientBudget402: a client whose allowance cannot cover even
// one plan estimate is rejected 402-style synchronously, before any
// scheduling happens.
func TestHTTPClientBudget402(t *testing.T) {
	s, _ := testServer(t, core.SchedulerConfig{Budget: 2, Arbitrate: true},
		map[string]energy.Joules{"bob": 1e-12})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/query",
		strings.NewReader(`{"sql":"SELECT COUNT(*) FROM orders WHERE custkey = 1"}`))
	req.Header.Set("X-API-Key", "bob")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("exhausted client got %d %s, want 402", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "energy budget exhausted") {
		t.Fatalf("402 body %q missing diagnosis", raw)
	}
	st := getStats(t, ts.URL)
	if st.Clients["bob"].Rejected402 != 1 || st.Clients["bob"].CommittedJ != 0 {
		t.Fatalf("client book %+v, want rejected_402=1 committed_j=0", st.Clients["bob"])
	}
}
