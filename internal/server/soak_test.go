package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestServeSoakConcurrent hammers the handler from many goroutines
// while a background driver advances the virtual clock, then audits
// conservation: every request got exactly one response, every ticket a
// distinct ID, and the energy books balance — attributed dynamic is
// fleet dynamic plus the batching saving, and the physical work book
// never exceeds the attributed one.  Run under -race this is the
// concurrency acceptance for the serving front end; it asserts no
// wall-clock behavior.
func TestServeSoakConcurrent(t *testing.T) {
	s, sc := testServer(t, core.SchedulerConfig{Budget: 2, BatchScans: true, Arbitrate: true}, nil)
	stop := startDriver(sc)
	defer stop()

	const clients, perClient = 8, 6
	type reply struct {
		code int
		body string
	}
	replies := make(chan reply, clients*perClient)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for m := 0; m < perClient; m++ {
				// Five hot keys so concurrent lookalikes can batch.
				body := fmt.Sprintf(`{"sql":"SELECT COUNT(*), SUM(amount) FROM orders WHERE custkey = %d"}`,
					(g*perClient+m)%5)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/query", strings.NewReader(body)))
				replies <- reply{rec.Code, rec.Body.String()}
			}
		}(g)
	}
	wg.Wait()
	close(replies)

	ids := make(map[int]bool, clients*perClient)
	for r := range replies {
		if r.code != 200 {
			t.Fatalf("soak response %d: %s", r.code, r.body)
		}
		var qr queryResponse
		if err := json.Unmarshal([]byte(r.body), &qr); err != nil {
			t.Fatalf("bad soak body %q: %v", r.body, err)
		}
		if ids[qr.ID] {
			t.Fatalf("duplicated response for ticket %d", qr.ID)
		}
		if qr.ID < 0 || qr.ID >= clients*perClient {
			t.Fatalf("ticket id %d outside the dense arrival range", qr.ID)
		}
		ids[qr.ID] = true
	}
	if len(ids) != clients*perClient {
		t.Fatalf("lost responses: %d of %d arrived", len(ids), clients*perClient)
	}

	s.mu.Lock()
	rep := s.loop.Report()
	s.mu.Unlock()
	if rep.Fleet.Completed != clients*perClient || rep.Fleet.Rejected != 0 {
		t.Fatalf("fleet completed=%d rejected=%d, want %d/0",
			rep.Fleet.Completed, rep.Fleet.Rejected, clients*perClient)
	}
	if rep.SavedDynamic < 0 {
		t.Fatalf("negative batching saving %v", rep.SavedDynamic)
	}
	if rep.Physical.BytesReadDRAM > rep.Attributed.BytesReadDRAM {
		t.Fatalf("physical book read %d bytes, attributed only %d",
			rep.Physical.BytesReadDRAM, rep.Attributed.BytesReadDRAM)
	}

	// The /stats identity must hold over the same books.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != clients*perClient {
		t.Fatalf("/stats completed %d, want %d", st.Completed, clients*perClient)
	}
	if gap := st.Energy.AttributedDynamicJ - st.Energy.FleetDynamicJ - st.Energy.SavedDynamicJ; gap != 0 {
		t.Fatalf("books out of balance: attributed - fleet - saved = %g", gap)
	}
}
