package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/workload"
)

// testEngine builds an engine with a sealed orders table of n rows —
// the same deterministic dataset the core scheduler tests use.
func testEngine(t testing.TB, n int) *core.Engine {
	t.Helper()
	e := core.Open()
	o := workload.GenOrders(42, n, n/100+10, 1.1)
	tab, err := e.CreateTable("orders", colstore.Schema{
		{Name: "id", Type: colstore.Int64},
		{Name: "custkey", Type: colstore.Int64},
		{Name: "amount", Type: colstore.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Writer().Int64("id", o.OrderID...).Close(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Writer().Int64("custkey", o.CustKey...).Close(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Writer().Float64("amount", o.Amount...).Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal("orders"); err != nil {
		t.Fatal(err)
	}
	return e
}

func testServer(t testing.TB, sched core.SchedulerConfig, clients map[string]energy.Joules) (*Server, *SimClock) {
	t.Helper()
	sc := NewSimClock()
	s := New(testEngine(t, 1<<15), Config{Sched: sched, Objective: opt.MinEnergy, Clients: clients}, sc)
	return s, sc
}

// TestServeDeterminismAcrossBudgets is the PR's headline acceptance:
// a fixed seed + fixed arrival script replayed through the full serving
// pipeline yields byte-identical response bodies and attributed energy
// books across core budgets {1,2,8} × batching on/off.  Only the fleet
// schedule and physical energy may move.  Run under -race on the 1-CPU
// CI box this asserts invariance, never wall-clock behavior.
func TestServeDeterminismAcrossBudgets(t *testing.T) {
	script := workload.PointStorm(17, 32, 200_000, 1.3, 40)
	type arm struct {
		played     []Played
		attributed energy.Counters
		attrDynJ   energy.Joules
		cacheTotal uint64
	}
	run := func(budget int, batch bool) arm {
		s, _ := testServer(t, core.SchedulerConfig{Budget: budget, BatchScans: batch, Arbitrate: true}, nil)
		played := s.Replay(script)
		rep := s.loop.Report()
		return arm{
			played:     played,
			attributed: rep.Attributed,
			attrDynJ:   rep.FleetDynamic + rep.SavedDynamic,
			cacheTotal: s.textHits + s.sigHits + s.misses,
		}
	}
	base := run(1, false)
	for i, p := range base.played {
		if p.Status != http.StatusOK {
			t.Fatalf("baseline arrival %d: status %d body %s", i, p.Status, p.Body)
		}
	}
	if base.cacheTotal != uint64(len(script.Arrivals)) {
		t.Fatalf("cache lookups %d != arrivals %d", base.cacheTotal, len(script.Arrivals))
	}
	for _, budget := range []int{1, 2, 8} {
		for _, batch := range []bool{false, true} {
			got := run(budget, batch)
			for i := range base.played {
				if got.played[i] != base.played[i] {
					t.Fatalf("budget=%d batch=%v: arrival %d response diverged\n got: %+v\nwant: %+v",
						budget, batch, i, got.played[i], base.played[i])
				}
			}
			if got.attributed != base.attributed {
				t.Fatalf("budget=%d batch=%v: attributed counters diverged", budget, batch)
			}
			if got.attrDynJ != base.attrDynJ {
				t.Fatalf("budget=%d batch=%v: attributed dynamic energy diverged: %v vs %v",
					budget, batch, got.attrDynJ, base.attrDynJ)
			}
		}
	}
}

// TestReplayIsRepeatable: two replays of the same script on fresh
// servers are byte-identical — the whole front end is a deterministic
// function of (engine seed, script, config).
func TestReplayIsRepeatable(t *testing.T) {
	script := workload.PointStorm(23, 16, 300_000, 1.3, 30)
	cfg := core.SchedulerConfig{Budget: 2, BatchScans: true, Arbitrate: true}
	s1, _ := testServer(t, cfg, nil)
	s2, _ := testServer(t, cfg, nil)
	a, b := s1.Replay(script), s2.Replay(script)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d not repeatable:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestReplayPlanCacheSharesLookalikes: a hot-key storm repeats SQL
// texts, so the second occurrence of any text must hit the cache, and
// canonically equal spellings share one prepared plan via ShareSig.
func TestReplayPlanCacheSharesLookalikes(t *testing.T) {
	s, _ := testServer(t, core.SchedulerConfig{Budget: 2, BatchScans: true, Arbitrate: true}, nil)
	script := &workload.Script{Arrivals: []workload.Arrival{
		{At: 0, SQL: "SELECT COUNT(*) FROM orders WHERE custkey = 7"},
		{At: time.Millisecond, SQL: "SELECT COUNT(*) FROM orders WHERE custkey = 7"},
		// Same canonical form, different spelling: sig hit, not text hit.
		{At: 2 * time.Millisecond, SQL: "SELECT  COUNT(*)  FROM orders WHERE custkey = 7"},
	}}
	for i, p := range s.Replay(script) {
		if p.Status != http.StatusOK {
			t.Fatalf("arrival %d: status %d body %s", i, p.Status, p.Body)
		}
	}
	if s.misses != 1 || s.textHits != 1 || s.sigHits != 1 {
		t.Fatalf("cache counters misses=%d textHits=%d sigHits=%d, want 1/1/1",
			s.misses, s.textHits, s.sigHits)
	}
	if len(s.sigs) != 1 {
		t.Fatalf("three spellings of one query filled %d plan entries", len(s.sigs))
	}
}

// TestReplayClientBudget402 pins the per-client energy account: the
// plan estimate is charged at admission, so once the committed sum
// would exceed the allowance the request is rejected 402-style —
// deterministically, at every core budget, because estimates never
// depend on the schedule.
func TestReplayClientBudget402(t *testing.T) {
	const sqlText = "SELECT COUNT(*), SUM(amount) FROM orders WHERE custkey = 3"
	probe, _ := testServer(t, core.SchedulerConfig{Budget: 2, Arbitrate: true}, nil)
	entry, _, err := probe.lookupLocked(sqlText, opt.MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	est := entry.info.Est.Energy

	script := (&workload.Script{Arrivals: []workload.Arrival{
		{At: 0, SQL: sqlText},
		{At: time.Millisecond, SQL: sqlText},
		{At: 2 * time.Millisecond, SQL: sqlText},
	}}).AssignClients("alice")
	for _, budget := range []int{1, 8} {
		s, _ := testServer(t, core.SchedulerConfig{Budget: budget, Arbitrate: true},
			map[string]energy.Joules{"alice": 2 * est}) // room for two, not three
		out := s.Replay(script)
		for i := 0; i < 2; i++ {
			if out[i].Status != http.StatusOK {
				t.Fatalf("budget=%d arrival %d: status %d body %s", budget, i, out[i].Status, out[i].Body)
			}
		}
		if out[2].Status != http.StatusPaymentRequired {
			t.Fatalf("budget=%d: third query got %d, want 402: %s", budget, out[2].Status, out[2].Body)
		}
		book := s.clients["alice"]
		if book.committed != 2*est || book.rejected402 != 1 {
			t.Fatalf("budget=%d: book committed=%v rejected=%d, want %v/1",
				budget, book.committed, book.rejected402, 2*est)
		}
		if book.spent <= 0 {
			t.Fatalf("budget=%d: completed queries recorded no measured spend", budget)
		}
	}
}

// TestServeQueueFull429 pins backpressure: with one core and queue
// depth one, a third distinct query arriving while the first runs and
// the second waits is rejected 429 with Retry-After derived from the
// virtual-time backlog.
func TestServeQueueFull429(t *testing.T) {
	s, _ := testServer(t, core.SchedulerConfig{Budget: 1, QueueDepth: 1, Arbitrate: true}, nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, sqlText := range []string{
		"SELECT COUNT(*) FROM orders WHERE custkey = 1",
		"SELECT COUNT(*) FROM orders WHERE custkey = 2",
	} {
		tk, _, rerr := s.admitLocked(0, "", sqlText, "")
		if rerr != nil {
			t.Fatalf("admit %d: %+v", i, rerr)
		}
		s.loop.React()
		if tk.Done() {
			t.Fatalf("query %d settled at admission", i)
		}
	}
	wantRetry := retryAfterSeconds(s.loop.Backlog(), 1)
	_, _, rerr := s.admitLocked(0, "", "SELECT COUNT(*) FROM orders WHERE custkey = 3", "")
	if rerr == nil || rerr.status != http.StatusTooManyRequests {
		t.Fatalf("overflow arrival not rejected 429: %+v", rerr)
	}
	if rerr.retryAfter != wantRetry || rerr.retryAfter < 1 {
		t.Fatalf("Retry-After %d, want %d (>=1) from backlog %v", rerr.retryAfter, wantRetry, s.loop.Backlog())
	}
}

// TestServeErrorPaths covers the synchronous request failures Drain
// never exercised: malformed JSON, missing/unknown fields, unknown
// tables, bad methods, unknown API keys.
func TestServeErrorPaths(t *testing.T) {
	s, _ := testServer(t, core.SchedulerConfig{Budget: 2, Arbitrate: true},
		map[string]energy.Joules{"alice": 1})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		apiKey string
		want   int
	}{
		{"malformed json", "POST", "/query", `{"sql": "SELECT`, "", http.StatusBadRequest},
		{"missing sql", "POST", "/query", `{}`, "", http.StatusBadRequest},
		{"unknown table", "POST", "/query", `{"sql":"SELECT COUNT(*) FROM nosuch"}`, "", http.StatusBadRequest},
		{"parse error", "POST", "/query", `{"sql":"SELEC COUNT(*) FROM orders"}`, "", http.StatusBadRequest},
		{"unknown objective", "POST", "/query", `{"sql":"SELECT COUNT(*) FROM orders","objective":"min-carbon"}`, "", http.StatusBadRequest},
		{"get on query", "GET", "/query", ``, "", http.StatusMethodNotAllowed},
		{"post on stats", "POST", "/stats", ``, "", http.StatusMethodNotAllowed},
		{"unknown api key", "POST", "/query", `{"sql":"SELECT COUNT(*) FROM orders"}`, "mallory", http.StatusUnauthorized},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, strings.NewReader(c.body))
		if c.apiKey != "" {
			req.Header.Set("X-API-Key", c.apiKey)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Fatalf("%s: status %d, want %d (body %s)", c.name, rec.Code, c.want, rec.Body.String())
		}
		if c.want != http.StatusOK && !strings.Contains(rec.Body.String(), "error") {
			t.Fatalf("%s: error body missing message: %s", c.name, rec.Body.String())
		}
	}
}

// TestServeCancelMidQueryRevokesLease: dropping the request context of
// an in-flight query propagates to its exec lease — the query settles
// as exec.ErrCanceled, nothing executes for it, and no spend is
// recorded for the client.
func TestServeCancelMidQueryRevokesLease(t *testing.T) {
	s, sc := testServer(t, core.SchedulerConfig{Budget: 1, Arbitrate: true},
		map[string]energy.Joules{"alice": 1e9})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/query",
		strings.NewReader(`{"sql":"SELECT COUNT(*) FROM orders WHERE custkey = 5","client":"alice"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		s.ServeHTTP(rec, req)
		close(handlerDone)
	}()
	for {
		s.mu.Lock()
		admitted := len(s.inflight) == 1
		s.mu.Unlock()
		if admitted {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-handlerDone
	tk := s.loop.Ticket(0)
	if tk == nil || !tk.Lease.Canceled() {
		t.Fatal("request-context cancellation did not revoke the exec lease")
	}
	sc.Advance(time.Hour) // retire the abandoned group
	s.mu.Lock()
	defer s.mu.Unlock()
	if !tk.Done() || !errors.Is(tk.Err, exec.ErrCanceled) {
		t.Fatalf("canceled ticket settled as %v, want exec.ErrCanceled", tk.Err)
	}
	if tk.Rel != nil {
		t.Fatal("canceled query produced a relation")
	}
	if book := s.clients["alice"]; book.spent != 0 {
		t.Fatalf("canceled query recorded spend %v", book.spent)
	}
	if rep := s.loop.Report(); rep.Fleet.Completed != 1 {
		t.Fatalf("abandoned group never retired: %+v", rep.Fleet)
	}
}
