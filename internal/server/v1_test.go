package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/workload"
)

// TestErrorEnvelopeAllRoutes is the API-redesign acceptance for the
// error contract: every failing status, on every route, on BOTH path
// versions, answers with the one envelope shape
// {"error":{"code","message","retry_after_s?"}}.
func TestErrorEnvelopeAllRoutes(t *testing.T) {
	s, _ := testServer(t, core.SchedulerConfig{Budget: 2, Arbitrate: true},
		map[string]energy.Joules{"bob": 1e-12})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name     string
		method   string
		path     string // version-less; the test tries both spellings
		body     string
		apiKey   string
		want     int
		wantCode string
	}{
		{"malformed json", "POST", "/query", `{"sql": "SELECT`, "", 400, "bad_request"},
		{"missing sql", "POST", "/query", `{}`, "", 400, "bad_request"},
		{"parse error", "POST", "/query", `{"sql":"SELEC 1"}`, "", 400, "bad_request"},
		{"unknown table", "POST", "/query", `{"sql":"SELECT COUNT(*) FROM nosuch"}`, "", 400, "bad_request"},
		{"unknown objective", "POST", "/query", `{"sql":"SELECT COUNT(*) FROM orders","objective":"min-carbon"}`, "", 400, "bad_request"},
		{"unknown api key", "POST", "/query", `{"sql":"SELECT COUNT(*) FROM orders"}`, "mallory", 401, "unknown_api_key"},
		{"budget exhausted", "POST", "/query", `{"sql":"SELECT COUNT(*) FROM orders"}`, "bob", 402, "energy_budget_exhausted"},
		{"get on query", "GET", "/query", ``, "", 405, "method_not_allowed"},
		{"post on stats", "POST", "/stats", ``, "", 405, "method_not_allowed"},
		{"malformed write json", "POST", "/write", `{`, "", 400, "bad_request"},
		{"missing write sql", "POST", "/write", `{}`, "", 400, "bad_request"},
		{"write parse error", "POST", "/write", `{"sql":"INSERT INTO"}`, "", 400, "bad_request"},
		{"select on write", "POST", "/write", `{"sql":"SELECT COUNT(*) FROM orders"}`, "", 400, "bad_request"},
		{"write unknown table", "POST", "/write", `{"sql":"INSERT INTO nosuch VALUES (1)"}`, "", 400, "bad_request"},
		{"write bad arity", "POST", "/write", `{"sql":"INSERT INTO orders VALUES (1)"}`, "", 400, "bad_request"},
		{"write type mismatch", "POST", "/write", `{"sql":"UPDATE orders SET id = 'x'"}`, "", 400, "bad_request"},
		{"write unknown key", "POST", "/write", `{"sql":"DELETE FROM orders"}`, "mallory", 401, "unknown_api_key"},
		{"write budget exhausted", "POST", "/write", `{"sql":"INSERT INTO orders VALUES (1, 2, 3.0)"}`, "bob", 402, "energy_budget_exhausted"},
		{"get on write", "GET", "/write", ``, "", 405, "method_not_allowed"},
	}
	for _, c := range cases {
		for _, prefix := range []string{"", "/v1"} {
			req, _ := http.NewRequest(c.method, ts.URL+prefix+c.path, strings.NewReader(c.body))
			if c.apiKey != "" {
				req.Header.Set("X-API-Key", c.apiKey)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("%s %s%s: status %d, want %d (body %s)", c.name, prefix, c.path, resp.StatusCode, c.want, raw)
			}
			var env errEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("%s %s%s: body %q is not the error envelope: %v", c.name, prefix, c.path, raw, err)
			}
			if env.Error.Code != c.wantCode {
				t.Fatalf("%s %s%s: code %q, want %q", c.name, prefix, c.path, env.Error.Code, c.wantCode)
			}
			if env.Error.Message == "" {
				t.Fatalf("%s %s%s: empty error message", c.name, prefix, c.path)
			}
			if env.Error.RetryAfterS != 0 {
				t.Fatalf("%s %s%s: unexpected retry_after_s %d", c.name, prefix, c.path, env.Error.RetryAfterS)
			}
		}
	}
}

// TestQueueFull429Envelope pins the 429's envelope: code queue_full and
// a retry_after_s mirroring the Retry-After header.
func TestQueueFull429Envelope(t *testing.T) {
	s, _ := testServer(t, core.SchedulerConfig{Budget: 1, QueueDepth: 1, Arbitrate: true}, nil)
	script := &workload.Script{Arrivals: []workload.Arrival{
		{At: 0, SQL: "SELECT COUNT(*) FROM orders WHERE custkey = 1"},
		{At: 0, SQL: "SELECT COUNT(*) FROM orders WHERE custkey = 2"},
		{At: 0, SQL: "SELECT COUNT(*) FROM orders WHERE custkey = 3"},
	}}
	out := s.Replay(script)
	if out[2].Status != http.StatusTooManyRequests {
		t.Fatalf("overflow arrival got %d: %s", out[2].Status, out[2].Body)
	}
	var env errEnvelope
	if err := json.Unmarshal([]byte(out[2].Body), &env); err != nil {
		t.Fatalf("429 body %q is not the envelope: %v", out[2].Body, err)
	}
	if env.Error.Code != "queue_full" || env.Error.RetryAfterS < 1 || env.Error.RetryAfterS != out[2].RetryAfter {
		t.Fatalf("429 envelope %+v, want queue_full with retry_after_s=%d", env.Error, out[2].RetryAfter)
	}
}

// TestDeprecatedAliasHeaders: unversioned paths answer identically but
// carry Deprecation plus a successor-version Link; /v1 paths carry
// neither.
func TestDeprecatedAliasHeaders(t *testing.T) {
	s, _ := testServer(t, core.SchedulerConfig{Budget: 2, Arbitrate: true}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, path := range []string{"/healthz", "/stats"} {
		old, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		oldBody, _ := io.ReadAll(old.Body)
		old.Body.Close()
		if old.Header.Get("Deprecation") != "true" {
			t.Fatalf("%s: missing Deprecation header", path)
		}
		if link := old.Header.Get("Link"); link != fmt.Sprintf("</v1%s>; rel=\"successor-version\"", path) {
			t.Fatalf("%s: Link header %q", path, link)
		}
		v1, err := http.Get(ts.URL + "/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		v1Body, _ := io.ReadAll(v1.Body)
		v1.Body.Close()
		if v1.Header.Get("Deprecation") != "" || v1.Header.Get("Link") != "" {
			t.Fatalf("/v1%s: versioned path carries deprecation headers", path)
		}
		if string(oldBody) != string(v1Body) || old.StatusCode != v1.StatusCode {
			t.Fatalf("%s: alias and /v1 answers diverge: %d %q vs %d %q",
				path, old.StatusCode, oldBody, v1.StatusCode, v1Body)
		}
	}
}

// TestWriteEndToEnd drives INSERT/UPDATE/DELETE through the real HTTP
// path and reads the writes back through /v1/query: the delta is
// visible to queries immediately, matched/applied counts are exact, and
// /v1/stats witnesses the writes.
func TestWriteEndToEnd(t *testing.T) {
	s, sc := testServer(t, core.SchedulerConfig{Budget: 2, Arbitrate: true}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	stop := startDriver(sc)
	defer stop()

	postWrite := func(sqlText string) (writeResponse, *http.Response) {
		t.Helper()
		body := fmt.Sprintf(`{"sql":%q}`, sqlText)
		resp, err := http.Post(ts.URL+"/v1/write", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/write %q: %d %s", sqlText, resp.StatusCode, raw)
		}
		var wr writeResponse
		if err := json.Unmarshal(raw, &wr); err != nil {
			t.Fatalf("bad write body %q: %v", raw, err)
		}
		return wr, resp
	}
	count := func(pred string) int {
		t.Helper()
		body := fmt.Sprintf(`{"sql":"SELECT COUNT(*) FROM orders WHERE %s"}`, pred)
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: %d %s", pred, resp.StatusCode, raw)
		}
		var qr queryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatal(err)
		}
		return int(qr.Rows[0][0].(float64)) // JSON numbers decode float64
	}

	// custkey -77 is outside the generated domain: our rows only.
	wr, resp := postWrite("INSERT INTO orders (id, custkey, amount) VALUES (900001, -77, 10.0), (900002, -77, 20.0), (900003, -77, 30.0)")
	if wr.Kind != "INSERT" || wr.Applied != 3 || wr.TS <= 0 {
		t.Fatalf("insert response %+v", wr)
	}
	if resp.Header.Get("X-Eimdb-Latency") == "" || resp.Header.Get("X-Eimdb-Flushed") == "" {
		t.Fatal("write response missing schedule-dependent headers")
	}
	if got := count("custkey = -77"); got != 3 {
		t.Fatalf("COUNT after insert = %d, want 3", got)
	}

	wr, _ = postWrite("UPDATE orders SET amount = 99.0 WHERE custkey = -77 AND amount < 25.0")
	if wr.Kind != "UPDATE" || wr.Matched != 2 || wr.Applied != 2 {
		t.Fatalf("update response %+v", wr)
	}
	if got := count("custkey = -77 AND amount = 99.0"); got != 2 {
		t.Fatalf("COUNT after update = %d, want 2", got)
	}

	wr, _ = postWrite("DELETE FROM orders WHERE custkey = -77 AND amount = 30.0")
	if wr.Kind != "DELETE" || wr.Matched != 1 {
		t.Fatalf("delete response %+v", wr)
	}
	if got := count("custkey = -77"); got != 2 {
		t.Fatalf("COUNT after delete = %d, want 2", got)
	}

	st := getStats(t, ts.URL)
	if st.Writes != 3 {
		t.Fatalf("stats writes = %d, want 3", st.Writes)
	}
}

// TestAutoMergeBackground: once a table's delta passes MergeDeltaRows,
// the server offers a background merge-as-a-query; it drains with the
// loop, re-seals the delta, and queries keep answering exactly through
// the transition.
func TestAutoMergeBackground(t *testing.T) {
	sc := NewSimClock()
	eng := testEngine(t, 1<<12)
	s := New(eng, Config{
		Sched:          core.SchedulerConfig{Budget: 2, Arbitrate: true},
		MergeDeltaRows: 4,
	}, sc)

	arrivals := make([]workload.Arrival, 0, 8)
	for i := 0; i < 6; i++ {
		arrivals = append(arrivals, workload.Arrival{
			At:  time.Duration(i) * time.Millisecond,
			SQL: fmt.Sprintf("INSERT INTO orders VALUES (%d, -9, %d.5)", 910000+i, i),
		})
	}
	arrivals = append(arrivals, workload.Arrival{
		At: 10 * time.Millisecond, SQL: "SELECT COUNT(*), SUM(amount) FROM orders WHERE custkey = -9"})
	out := s.Replay(&workload.Script{Arrivals: arrivals})
	for i, p := range out {
		if p.Status != http.StatusOK {
			t.Fatalf("arrival %d: status %d body %s", i, p.Status, p.Body)
		}
	}
	var qr queryResponse
	if err := json.Unmarshal([]byte(out[6].Body), &qr); err != nil {
		t.Fatal(err)
	}
	if int(qr.Rows[0][0].(float64)) != 6 {
		t.Fatalf("post-merge COUNT = %v, want 6", qr.Rows[0][0])
	}
	if s.merges < 1 {
		t.Fatal("delta crossed the threshold but no merge completed")
	}
	if len(s.merging) != 0 {
		t.Fatalf("merge bookkeeping leaked: %v", s.merging)
	}
	tab, err := eng.Catalog().Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if tab.DeltaRows() >= 6 {
		t.Fatalf("delta was never re-sealed: %d delta rows", tab.DeltaRows())
	}
}

// TestMixedScriptReplayIsRepeatable: a script interleaving writes,
// reads, and auto-merges replays byte-identically on a fresh server —
// the write path keeps the deterministic-replay contract.
func TestMixedScriptReplayIsRepeatable(t *testing.T) {
	script := &workload.Script{}
	reads := workload.PointStorm(23, 12, 300_000, 1.3, 30)
	for i, a := range reads.Arrivals {
		script.Arrivals = append(script.Arrivals, a)
		if i%3 == 0 {
			script.Arrivals = append(script.Arrivals, workload.Arrival{
				At:  a.At + time.Microsecond,
				SQL: fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, 1.5)", 920000+i, i%7),
			})
		}
	}
	mk := func() *Server {
		sc := NewSimClock()
		return New(testEngine(t, 1<<12), Config{
			Sched:          core.SchedulerConfig{Budget: 2, BatchScans: true, Arbitrate: true},
			MergeDeltaRows: 2,
		}, sc)
	}
	a, b := mk().Replay(script), mk().Replay(script)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d not repeatable:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
