package server

import (
	"sort"
	"sync"
	"time"
)

// Clock is the server's only source of time.  The serving loop never
// reads a wall clock directly: production wires a monotonic real clock
// (cmd/eimdb-serve), tests wire SimClock and drive virtual time by
// hand — the same discipline that makes mq_test.go deterministic, now
// spanning the whole HTTP front end.  Now is the current offset since
// the clock's epoch; Schedule requests a wake-up callback at (or as
// soon as possible after) the given offset.
type Clock interface {
	Now() time.Duration
	Schedule(at time.Duration, wake func())
}

// simWake is one pending SimClock callback.
type simWake struct {
	at  time.Duration
	seq int // FIFO tie-break for wakes at the same instant
	fn  func()
}

// SimClock is a hand-driven virtual clock.  Time moves only through
// Advance, which fires scheduled wakes in (time, FIFO) order — each
// wake invoked OUTSIDE the clock's lock, at a Now() equal to its
// scheduled offset, so a wake may itself read the clock and schedule
// further wakes.  Two runs that advance through the same offsets fire
// the same wakes at the same virtual instants: nothing here depends on
// the wall clock or goroutine timing.
type SimClock struct {
	mu    sync.Mutex
	now   time.Duration
	wakes []simWake
	seq   int
}

// NewSimClock returns a virtual clock at offset zero.
func NewSimClock() *SimClock { return &SimClock{} }

// Now returns the current virtual offset.
func (c *SimClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Schedule registers a wake at the given offset.  Offsets in the past
// clamp to the present and fire on the next Advance.  Duplicate and
// stale wakes are expected — the serving loop re-schedules its next
// completion after every event and treats spurious wake-ups as no-ops.
func (c *SimClock) Schedule(at time.Duration, wake func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at < c.now {
		at = c.now
	}
	c.wakes = append(c.wakes, simWake{at: at, seq: c.seq, fn: wake})
	c.seq++
	sort.SliceStable(c.wakes, func(i, j int) bool { return c.wakes[i].at < c.wakes[j].at })
}

// Advance moves virtual time to the given offset, firing every wake
// scheduled at or before it, in order.  The clock's lock is released
// around each callback: wakes take the server's lock, and the server's
// handlers take the clock's — holding both here would invert that
// order and deadlock.  Advance never moves time backward.
func (c *SimClock) Advance(to time.Duration) {
	for {
		c.mu.Lock()
		if len(c.wakes) == 0 || c.wakes[0].at > to {
			if to > c.now {
				c.now = to
			}
			c.mu.Unlock()
			return
		}
		w := c.wakes[0]
		c.wakes = c.wakes[1:]
		if w.at > c.now {
			c.now = w.at
		}
		c.mu.Unlock()
		w.fn()
	}
}
