package txn

import (
	"sync"
	"testing"
	"time"
)

func TestAllSchemesExactlyCorrect(t *testing.T) {
	const ops, groups, workers = 80000, 128, 8
	for _, s := range []Scheme{GlobalLock, ShardedLock, AtomicAdd, HTMSim, Partitioned} {
		r := RunAggregation(s, workers, ops, groups, 1.1, 42)
		want := int64(ops / workers * workers)
		if got := r.Total(); got != want {
			t.Errorf("%v: total = %d, want %d (lost or duplicated updates)", s, got, want)
		}
		if len(r.Groups) != groups {
			t.Errorf("%v: %d groups", s, len(r.Groups))
		}
	}
}

func TestSchemesAgreeOnDistribution(t *testing.T) {
	// Same seed => same Zipf draws => identical group totals across
	// schemes (determinism of the workload, not the interleaving).
	const ops, groups, workers = 40000, 64, 4
	base := RunAggregation(GlobalLock, workers, ops, groups, 1.2, 7)
	for _, s := range []Scheme{ShardedLock, AtomicAdd, HTMSim, Partitioned} {
		r := RunAggregation(s, workers, ops, groups, 1.2, 7)
		for g := range base.Groups {
			if r.Groups[g] != base.Groups[g] {
				t.Fatalf("%v: group %d = %d, want %d", s, g, r.Groups[g], base.Groups[g])
			}
		}
	}
}

func TestHTMSimAbortsUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("contention test")
	}
	// Extreme skew on few groups with many workers must provoke retries.
	r := RunAggregation(HTMSim, 8, 400000, 2, 2.0, 11)
	if r.Aborts == 0 {
		t.Log("note: no aborts observed (machine may be single-core); skipping assertion")
	}
	if r.Total() != int64(400000/8*8) {
		t.Fatal("aborted transactions must retry to completion")
	}
}

func TestPartitionedBeatsGlobalLockWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const ops, groups = 400000, 256
	run := func(s Scheme) time.Duration {
		start := time.Now() //lint:allow determinism: deliberate wall-clock scaling probe, skipped under -short; asserts only a generous ratio
		RunAggregation(s, 8, ops, groups, 1.1, 3)
		return time.Since(start) //lint:allow determinism: deliberate wall-clock scaling probe, skipped under -short; asserts only a generous ratio
	}
	// Warm up the scheduler.
	run(Partitioned)
	gl := run(GlobalLock)
	pt := run(Partitioned)
	// The paper's claim is about scaling; on a multicore box partitioned
	// should not be slower.  Keep a generous margin for CI noise.
	if pt > gl*3 {
		t.Errorf("partitioned (%v) much slower than global lock (%v)?", pt, gl)
	}
}

func TestMVCCSnapshotIsolation(t *testing.T) {
	db := NewMVCC()
	t1 := db.Begin()
	t1.Set("x", 1)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Reader snapshot taken before a later write must not see it.
	reader := db.Begin()
	writer := db.Begin()
	writer.Set("x", 2)
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := reader.Get("x"); !ok || v != 1 {
		t.Fatalf("snapshot read = %d,%v want 1", v, ok)
	}
	if v, _ := db.ReadCommitted("x"); v != 2 {
		t.Fatalf("latest read = %d want 2", v)
	}
}

func TestMVCCFirstCommitterWins(t *testing.T) {
	db := NewMVCC()
	seed := db.Begin()
	seed.Set("k", 0)
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	a := db.Begin()
	b := db.Begin()
	a.Set("k", 10)
	b.Set("k", 20)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != ErrConflict {
		t.Fatalf("second committer must abort, got %v", err)
	}
	if v, _ := db.ReadCommitted("k"); v != 10 {
		t.Fatalf("value = %d want 10", v)
	}
}

func TestMVCCOwnWritesVisible(t *testing.T) {
	db := NewMVCC()
	tx := db.Begin()
	tx.Set("a", 5)
	if v, ok := tx.Get("a"); !ok || v != 5 {
		t.Fatal("transaction must see its own writes")
	}
	tx.Abort()
	if _, ok := db.ReadCommitted("a"); ok {
		t.Fatal("aborted writes must not be visible")
	}
}

func TestMVCCReadOnlyCommitAlwaysSucceeds(t *testing.T) {
	db := NewMVCC()
	w := db.Begin()
	w.Set("x", 1)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	ro := db.Begin()
	ro.Get("x")
	w2 := db.Begin()
	w2.Set("x", 2)
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("read-only commit must not conflict: %v", err)
	}
	if err := ro.Commit(); err == nil {
		t.Fatal("double commit must error")
	}
}

func TestMVCCConcurrentCounter(t *testing.T) {
	// Lost-update prevention: concurrent read-modify-write transactions
	// retrying on conflict must converge to the exact count.
	db := NewMVCC()
	init := db.Begin()
	init.Set("n", 0)
	if err := init.Commit(); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					tx := db.Begin()
					v, _ := tx.Get("n")
					tx.Set("n", v+1)
					if tx.Commit() == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := db.ReadCommitted("n"); v != workers*perWorker {
		t.Fatalf("counter = %d want %d", v, workers*perWorker)
	}
}

func TestMVCCVacuum(t *testing.T) {
	db := NewMVCC()
	for i := 0; i < 10; i++ {
		tx := db.Begin()
		tx.Set("k", int64(i))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if db.Versions("k") != 10 {
		t.Fatalf("versions = %d", db.Versions("k"))
	}
	db.Vacuum(db.ts.Load())
	if db.Versions("k") != 1 {
		t.Fatalf("after vacuum: %d versions", db.Versions("k"))
	}
	if v, _ := db.ReadCommitted("k"); v != 9 {
		t.Fatalf("vacuum lost the newest value: %d", v)
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		GlobalLock: "global-lock", ShardedLock: "sharded-lock",
		AtomicAdd: "atomic", HTMSim: "htm-sim", Partitioned: "partitioned",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
