package txn

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MVCC is a multi-version key-value store with snapshot reads and
// first-committer-wins write conflicts — the optimistic, latch-light
// concurrency design of the paper's reference [18] (Hekaton-style), in
// miniature.  Readers never block writers; writers never block readers;
// conflicting writers abort at commit.
type MVCC struct {
	mu    sync.RWMutex
	ts    atomic.Int64
	chain map[string][]version // newest last
}

type version struct {
	commitTS int64
	value    int64
}

// NewMVCC returns an empty store.
func NewMVCC() *MVCC { return &MVCC{chain: make(map[string][]version)} }

// ErrConflict is returned when a transaction loses a write-write race.
var ErrConflict = fmt.Errorf("txn: write-write conflict, transaction aborted")

// Tx is an MVCC transaction: a snapshot timestamp, a read set, and
// buffered writes.
type Tx struct {
	db     *MVCC
	snapTS int64
	writes map[string]int64
	done   bool
}

// Begin starts a transaction at the current snapshot.
func (m *MVCC) Begin() *Tx {
	return &Tx{db: m, snapTS: m.ts.Load(), writes: make(map[string]int64)}
}

// readAt returns the value of key visible at ts.
func (m *MVCC) readAt(key string, ts int64) (int64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ch := m.chain[key]
	for i := len(ch) - 1; i >= 0; i-- {
		if ch[i].commitTS <= ts {
			return ch[i].value, true
		}
	}
	return 0, false
}

// Get reads key at the transaction snapshot (own writes win).
func (t *Tx) Get(key string) (int64, bool) {
	if v, ok := t.writes[key]; ok {
		return v, true
	}
	return t.db.readAt(key, t.snapTS)
}

// Set buffers a write.
func (t *Tx) Set(key string, v int64) { t.writes[key] = v }

// Commit validates that no written key has a version newer than the
// snapshot (first committer wins) and installs the writes atomically.
func (t *Tx) Commit() error {
	if t.done {
		return fmt.Errorf("txn: transaction already finished")
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil
	}
	m := t.db
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range t.writes {
		ch := m.chain[key]
		if len(ch) > 0 && ch[len(ch)-1].commitTS > t.snapTS {
			return ErrConflict
		}
	}
	commitTS := m.ts.Add(1)
	for key, v := range t.writes {
		m.chain[key] = append(m.chain[key], version{commitTS: commitTS, value: v})
	}
	return nil
}

// Abort discards the transaction.
func (t *Tx) Abort() { t.done = true }

// ReadCommitted reads the latest committed value outside any transaction.
func (m *MVCC) ReadCommitted(key string) (int64, bool) {
	return m.readAt(key, m.ts.Load())
}

// Versions returns how many versions key has accumulated (GC/diagnostic).
func (m *MVCC) Versions(key string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.chain[key])
}

// Vacuum drops all but the newest version visible at or before ts,
// bounding version-chain growth.
func (m *MVCC) Vacuum(ts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key, ch := range m.chain {
		keepFrom := 0
		for i := len(ch) - 1; i >= 0; i-- {
			if ch[i].commitTS <= ts {
				keepFrom = i
				break
			}
		}
		if keepFrom > 0 {
			m.chain[key] = append([]version(nil), ch[keepFrom:]...)
		}
	}
}
