package txn

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/colstore"
	"repro/internal/energy"
	"repro/internal/wal"
)

// Table transactions: the MVCC design above, extended from the key-value
// micro-store to the main/delta column store.  A Manager owns the commit
// clock and the REDO log; a TableTx buffers inserts and deletes against
// colstore tables, validates first-committer-wins at commit, logs REDO
// records, applies the rows with one commit timestamp (which is what the
// tables' snapshot visibility reads), and rides the group-commit window
// so flush and replication cost amortize over concurrent commits —
// exactly the E9 group-commit economics, now on the real write path.

// Manager owns the commit timestamp clock, the REDO log, and the
// group-commit window for a set of tables.
type Manager struct {
	mu  sync.Mutex
	log *wal.Log
	// level is the durability QoS commits flush at.
	level wal.Level
	// window is the group-commit window: commits arriving within it ride
	// the previous flush (durable at the next one) instead of paying
	// their own.  Zero degenerates to a flush per commit.
	window    time.Duration
	ts        int64
	lastFlush time.Duration
	haveFlush bool

	commits int
	flushes int
	rides   int
	work    energy.Counters
}

// NewManager wires a manager to a log.  A nil log disables durability
// (commits apply, nothing is logged — for tests and scratch engines).
func NewManager(log *wal.Log, level wal.Level, window time.Duration) *Manager {
	return &Manager{log: log, level: level, window: window}
}

// SnapshotTS returns the current snapshot timestamp: every commit at or
// below it is visible.
func (m *Manager) SnapshotTS() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ts
}

// ObserveTS raises the commit clock to at least ts; replay calls it so
// post-recovery commits continue past the replayed history.
func (m *Manager) ObserveTS(ts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts > m.ts {
		m.ts = ts
	}
}

// Stats reports commit/flush counts and accumulated durability work.
func (m *Manager) Stats() (commits, flushes, rides int, work energy.Counters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits, m.flushes, m.rides, m.work
}

// Begin starts a table transaction at the current snapshot.
func (m *Manager) Begin() *TableTx {
	return &TableTx{m: m, snap: m.SnapshotTS()}
}

type tableOp struct {
	kind  wal.RecKind
	table *colstore.Table
	vals  []any // RecInsert
	rowid int64 // RecDelete
}

// TableTx buffers DML against colstore tables.  Reads run outside the
// transaction at its snapshot (Snapshot); writes apply at Commit.
type TableTx struct {
	m    *Manager
	snap int64
	ops  []tableOp
	done bool
}

// Snapshot returns the transaction's snapshot timestamp.
func (tx *TableTx) Snapshot() int64 { return tx.snap }

// Insert buffers one row (schema-ordered values).
func (tx *TableTx) Insert(t *colstore.Table, vals ...any) {
	tx.ops = append(tx.ops, tableOp{kind: wal.RecInsert, table: t, vals: vals})
}

// Delete buffers a tombstone on the row with the given stable id.
func (tx *TableTx) Delete(t *colstore.Table, rowid int64) {
	tx.ops = append(tx.ops, tableOp{kind: wal.RecDelete, table: t, rowid: rowid})
}

// Update buffers an update as delete + insert: the old row is
// tombstoned, the new version appended to the delta with a fresh stable
// id (version chains live in the row space, not in per-key chains).
func (tx *TableTx) Update(t *colstore.Table, rowid int64, vals ...any) {
	tx.Delete(t, rowid)
	tx.Insert(t, vals...)
}

// Abort discards the transaction.
func (tx *TableTx) Abort() { tx.done = true }

// CommitInfo reports one commit.
type CommitInfo struct {
	TS      int64  // commit timestamp
	LastLSN uint64 // highest WAL LSN of the transaction's records
	// Flushed is true when this commit paid for a flush; false when it
	// rode the group-commit window (durable at the next flush).
	Flushed bool
	Latency time.Duration
	// Work prices the WAL writes this commit triggered (DRAM for the
	// records, plus flush/replication when Flushed).
	Work    energy.Counters
	Applied int // rows inserted + tombstoned
}

// Commit validates first-committer-wins, logs REDO records, applies the
// buffered operations under one fresh commit timestamp, and settles
// durability through the group-commit window.  at is the commit's
// virtual arrival time, which paces the window deterministically.
func (tx *TableTx) Commit(at time.Duration) (CommitInfo, error) {
	if tx.done {
		return CommitInfo{}, fmt.Errorf("txn: transaction already finished")
	}
	tx.done = true
	m := tx.m
	m.mu.Lock()
	defer m.mu.Unlock()
	// Validation: a delete of a row already tombstoned (by anyone) loses
	// — first committer wins; a delete of a vanished row id means the
	// row was tombstoned and merged away, the same race, same verdict.
	// Inserts are validated against the schema so a multi-op commit
	// cannot tear.
	for _, op := range tx.ops {
		switch op.kind {
		case wal.RecInsert:
			if err := op.table.CheckRow(op.vals...); err != nil {
				return CommitInfo{}, err
			}
		case wal.RecDelete:
			if _, ok := op.table.LookupRow(op.rowid); !ok {
				return CommitInfo{}, ErrConflict
			}
			if _, dead := op.table.DeletedAt(op.rowid); dead {
				return CommitInfo{}, ErrConflict
			}
		}
	}
	ts := m.ts + 1
	info := CommitInfo{TS: ts}
	// REDO before apply; replay reassigns stable row ids in append
	// order, so insert records don't carry them.
	for _, op := range tx.ops {
		switch op.kind {
		case wal.RecInsert:
			rec := wal.Record{Kind: wal.RecInsert, TxID: uint64(ts), Key: op.table.Name, Payload: EncodeRow(op.vals)}
			var lsn uint64
			if m.log != nil {
				lsn = m.log.Append(rec)
			}
			if _, err := op.table.ApplyInsert(ts, lsn, op.vals...); err != nil {
				// Validated above; failure here is a programming error.
				return info, err
			}
			info.LastLSN = lsn
		case wal.RecDelete:
			var lsn uint64
			if m.log != nil {
				lsn = m.log.Append(wal.Record{Kind: wal.RecDelete, TxID: uint64(ts), Key: op.table.Name, Value: op.rowid})
			}
			if err := op.table.ApplyDelete(ts, lsn, op.rowid); err != nil {
				return info, err
			}
			info.LastLSN = lsn
		}
		info.Applied++
	}
	m.ts = ts
	m.commits++
	// Group commit: pay for a flush when the window has lapsed (or no
	// flush happened yet); otherwise ride the open window.
	if m.log != nil {
		if !m.haveFlush || m.window == 0 || at-m.lastFlush >= m.window {
			rep, err := m.log.Commit(m.level)
			if err != nil {
				return info, err
			}
			info.Flushed = true
			info.Latency = rep.Latency
			info.Work = rep.Work
			m.work.Add(rep.Work)
			m.lastFlush = at
			m.haveFlush = true
			m.flushes++
		} else {
			m.rides++
		}
	}
	return info, nil
}

// Sync flushes everything pending in the log (shutdown, or before a
// simulated crash).
func (m *Manager) Sync() (wal.CommitReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return wal.CommitReport{}, nil
	}
	rep, err := m.log.Commit(m.level)
	if err == nil {
		m.work.Add(rep.Work)
		m.flushes++
	}
	return rep, err
}

// Apply replays one REDO record into its table, resolving tables by
// name.  Replay is idempotent: records at or below a table's applied LSN
// are skipped, so replaying a log twice — or replaying records already
// applied before a crash — changes nothing.  Legacy key/value records
// (RecSet) are not table state and are skipped.
func Apply(rec wal.Record, resolve func(string) *colstore.Table) error {
	if rec.Kind == wal.RecSet {
		return nil
	}
	t := resolve(rec.Key)
	if t == nil {
		return fmt.Errorf("txn: replay: unknown table %q", rec.Key)
	}
	if rec.LSN <= t.AppliedLSN() {
		return nil
	}
	switch rec.Kind {
	case wal.RecInsert:
		vals, err := DecodeRow(t.Schema(), rec.Payload)
		if err != nil {
			return fmt.Errorf("txn: replay lsn %d: %w", rec.LSN, err)
		}
		if _, err := t.ApplyInsert(int64(rec.TxID), rec.LSN, vals...); err != nil {
			return fmt.Errorf("txn: replay lsn %d: %w", rec.LSN, err)
		}
	case wal.RecDelete:
		if err := t.ApplyDelete(int64(rec.TxID), rec.LSN, rec.Value); err != nil {
			return fmt.Errorf("txn: replay lsn %d: %w", rec.LSN, err)
		}
	default:
		return fmt.Errorf("txn: replay lsn %d: unknown record kind %d", rec.LSN, rec.Kind)
	}
	return nil
}

// Replay recovers every surviving table record from the log, in LSN
// order, and raises the manager clock past the replayed history.
// Returns the number of records applied (skipped records don't count).
func (m *Manager) Replay(resolve func(string) *colstore.Table) (int, error) {
	if m.log == nil {
		return 0, nil
	}
	applied := 0
	var firstErr error
	var maxTS int64
	m.log.Recover(func(rec wal.Record) {
		if firstErr != nil || rec.Kind == wal.RecSet {
			return
		}
		if t := resolve(rec.Key); t != nil && rec.LSN <= t.AppliedLSN() {
			if int64(rec.TxID) > maxTS {
				maxTS = int64(rec.TxID)
			}
			return
		}
		if err := Apply(rec, resolve); err != nil {
			firstErr = err
			return
		}
		if int64(rec.TxID) > maxTS {
			maxTS = int64(rec.TxID)
		}
		applied++
	})
	if firstErr != nil {
		return applied, firstErr
	}
	m.ObserveTS(maxTS)
	return applied, nil
}

// EncodeRow serializes schema-ordered row values for a REDO payload:
// int64 and float64 as 8 little-endian bytes, strings length-prefixed
// (uvarint).  The encoding is positional — the schema supplies types at
// decode.
func EncodeRow(vals []any) []byte {
	var out []byte
	var buf [8]byte
	for _, v := range vals {
		switch x := v.(type) {
		case int64:
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			out = append(out, buf[:]...)
		case float64:
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			out = append(out, buf[:]...)
		case string:
			n := binary.PutUvarint(buf[:], uint64(len(x)))
			out = append(out, buf[:n]...)
			out = append(out, x...)
		}
	}
	return out
}

// DecodeRow deserializes a REDO payload against the schema.
func DecodeRow(schema colstore.Schema, b []byte) ([]any, error) {
	vals := make([]any, 0, len(schema))
	for _, d := range schema {
		switch d.Type {
		case colstore.Int64, colstore.Float64:
			if len(b) < 8 {
				return nil, fmt.Errorf("txn: short row payload at column %q", d.Name)
			}
			u := binary.LittleEndian.Uint64(b[:8])
			b = b[8:]
			if d.Type == colstore.Int64 {
				vals = append(vals, int64(u))
			} else {
				vals = append(vals, math.Float64frombits(u))
			}
		case colstore.String:
			n, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b)-sz) < n {
				return nil, fmt.Errorf("txn: short row payload at column %q", d.Name)
			}
			vals = append(vals, string(b[sz:sz+int(n)]))
			b = b[sz+int(n):]
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("txn: %d trailing payload bytes", len(b))
	}
	return vals, nil
}
