// Package txn implements the concurrency-control substrate of §III
// ("enhanced synchronization methods").  The paper's running example — a
// parallel aggregation split over hundreds of threads, where every stream
// carries entries for every customer group — is reproduced directly: a
// shared array of group accumulators updated by N goroutines under five
// synchronization schemes:
//
//   - GlobalLock:   one mutex over all groups (the lock/latch baseline
//     whose "significant serial part dramatically reduces speedup" [6]).
//   - ShardedLock:  one mutex per group shard.
//   - AtomicAdd:    lock-free per-group atomic adds.
//   - HTMSim:       software-simulated hardware transactional memory in
//     the spirit of Intel TSX [7]: optimistic versioned read-modify-write
//     with abort/retry.
//   - Partitioned:  each worker owns a private accumulator array, merged
//     at the end — the no-sharing design the paper advocates.
//
// Experiment E4 sweeps worker counts and reports the speedup curves.
package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/workload"
)

// Scheme selects a synchronization strategy for the parallel aggregation.
type Scheme int

// The synchronization schemes compared in experiment E4.
const (
	GlobalLock Scheme = iota
	ShardedLock
	AtomicAdd
	HTMSim
	Partitioned
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case GlobalLock:
		return "global-lock"
	case ShardedLock:
		return "sharded-lock"
	case AtomicAdd:
		return "atomic"
	case HTMSim:
		return "htm-sim"
	case Partitioned:
		return "partitioned"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// AggResult reports one parallel aggregation run.
type AggResult struct {
	Groups  []int64
	Aborts  uint64 // HTMSim retries
	Workers int
}

// Total sums all groups.
func (r AggResult) Total() int64 {
	var t int64
	for _, g := range r.Groups {
		t += g
	}
	return t
}

// numShards for the sharded-lock scheme.
const numShards = 64

// RunAggregation adds `ops` operations of value 1 into `groups`
// accumulators using `workers` goroutines under the given scheme.  Group
// choice per operation is Zipf-skewed (hot customer groups, as in the
// paper's example).  The returned group totals always sum to ops — every
// scheme must be exactly correct, only their scalability differs.
func RunAggregation(scheme Scheme, workers, ops, groups int, skew float64, seed uint64) AggResult {
	if workers < 1 || groups < 1 {
		panic("txn: workers and groups must be positive")
	}
	perWorker := ops / workers
	res := AggResult{Workers: workers}
	var aborts atomic.Uint64

	switch scheme {
	case GlobalLock:
		acc := make([]int64, groups)
		var mu sync.Mutex
		runWorkers(workers, seed, skew, groups, perWorker, func(_ int, g int) {
			mu.Lock()
			acc[g]++
			mu.Unlock()
		})
		res.Groups = acc

	case ShardedLock:
		acc := make([]int64, groups)
		var mus [numShards]sync.Mutex
		runWorkers(workers, seed, skew, groups, perWorker, func(_ int, g int) {
			mu := &mus[g%numShards]
			mu.Lock()
			acc[g]++
			mu.Unlock()
		})
		res.Groups = acc

	case AtomicAdd:
		acc := make([]int64, groups)
		runWorkers(workers, seed, skew, groups, perWorker, func(_ int, g int) {
			atomic.AddInt64(&acc[g], 1)
		})
		res.Groups = acc

	case HTMSim:
		acc := make([]int64, groups)
		runWorkers(workers, seed, skew, groups, perWorker, func(_ int, g int) {
			for {
				// Transactional region: read the version (value), compute,
				// and commit with CAS.  A concurrent writer aborts the
				// transaction, which retries — TSX-style optimism.
				old := atomic.LoadInt64(&acc[g])
				if atomic.CompareAndSwapInt64(&acc[g], old, old+1) {
					return
				}
				aborts.Add(1)
			}
		})
		res.Groups = acc

	case Partitioned:
		parts := make([][]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			parts[w] = make([]int64, groups)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := workload.NewRNG(seed + uint64(w)*1000003)
				z := workload.NewZipf(rng, skew, groups)
				local := parts[w]
				for i := 0; i < perWorker; i++ {
					local[z.Next()]++
				}
			}(w)
		}
		wg.Wait()
		acc := make([]int64, groups)
		for _, p := range parts {
			for g, v := range p {
				acc[g] += v
			}
		}
		res.Groups = acc
	}
	res.Aborts = aborts.Load()
	return res
}

// runWorkers spawns the workers, each applying `apply` perWorker times to
// Zipf-chosen groups.
func runWorkers(workers int, seed uint64, skew float64, groups, perWorker int, apply func(worker, group int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(seed + uint64(w)*1000003)
			z := workload.NewZipf(rng, skew, groups)
			for i := 0; i < perWorker; i++ {
				apply(w, z.Next())
			}
		}(w)
	}
	wg.Wait()
}
