// Package repro is a from-scratch Go reproduction of W. Lehner,
// "Energy-Efficient In-Memory Database Computing" (DATE 2013): an
// energy-aware in-memory column-store engine together with every
// substrate the paper's argument rests on — word-parallel scans, a
// morsel-driven parallel executor with an energy-aware degree of
// parallelism chosen per query from the scheduler's P-state cost model,
// compression codecs with advisor-chosen per-segment storage and
// operate-on-compressed scan kernels (predicates evaluated directly on
// RLE runs, delta checkpoints, dictionary codes, and bit-packed words),
// radix-partitioned morsel-parallel hash joins that run string keys in
// the dictionary code domain, secondary indexes, a dual time/energy
// optimizer with a DP-to-greedy join-ordering pass, an
// energy-aware scheduler with a multi-query layer (admission-controlled
// run queue, a shared core budget arbitrated across concurrent queries
// by the P-state DOP pricer through revocable core leases, and
// shared-scan batching of lookalike queries, driven by open-loop
// arrival processes), an online HTTP/JSON serving front end
// (internal/server + cmd/eimdb-serve: plan cache keyed by the canonical
// share signature, per-client energy admission, queue backpressure —
// deterministic to the byte on a simulated clock), concurrency-control
// schemes, a QoS REDO log, a
// storage hierarchy, a network simulator, distributed query shipping
// (internal/dist: ship-raw vs ship-compressed vs aggregate pushdown over
// a simulated cluster), cluster elasticity, flexible schema, database
// conversations, and robustness policies.
//
// See README.md for the tour and build/test instructions, ARCHITECTURE.md
// for the subsystem map, the morsel pipeline, and the energy-accounting
// walkthrough, and EXPERIMENTS.md for the per-claim reproduction map.
// The root-level bench_test.go regenerates every experiment under
// `go test -bench`.  The determinism and energy-accounting contracts
// are machine-checked by the stdlib-only internal/lint suite — run it
// with `go run ./cmd/eimdb-lint ./...` (it also runs inside tier-1
// `go test ./...` and as the CI lint job).
package repro
