// Command eimdb-cli is an interactive SQL shell over the engine, loaded
// with the demo orders/customer dataset.  Each query prints its rows
// followed by the plan and the energy report — the paper's position that
// energy is a first-class citizen, visible per query.
//
// Meta commands: \plan <sql> shows the plan without running; \tables
// lists tables; \quit exits.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	e := core.Open()
	if err := loadDemo(e); err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Println("eimdb — energy-efficient in-memory database (demo dataset: orders, customer)")
	fmt.Println(`type SQL, or \plan <sql>, \tables, \quit`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("eimdb> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range e.Catalog().Tables() {
				fmt.Println(" ", t)
			}
		case strings.HasPrefix(line, `\plan `):
			plan, err := e.Explain(strings.TrimPrefix(line, `\plan `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(plan)
		default:
			res, err := e.Query(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(core.Format(res.Rel))
			fmt.Printf("(%d rows, %v wall, %v model energy: %v)\n",
				res.Rel.N, res.Elapsed.Round(10*time.Microsecond), res.Joules(), res.Energy)
		}
	}
}

// loadDemo creates the demo schema: 200k orders and 2k customers.
func loadDemo(e *core.Engine) error {
	const nOrders, nCust = 200_000, 2_000
	o := workload.GenOrders(1, nOrders, nCust, 1.1)
	orders, err := e.CreateTable("orders", colstore.Schema{
		{Name: "id", Type: colstore.Int64},
		{Name: "custkey", Type: colstore.Int64},
		{Name: "region", Type: colstore.String},
		{Name: "status", Type: colstore.String},
		{Name: "amount", Type: colstore.Float64},
		{Name: "day", Type: colstore.Int64},
	})
	if err != nil {
		return err
	}
	regions := make([]string, nOrders)
	statuses := make([]string, nOrders)
	for i := range regions {
		regions[i] = workload.RegionNames[o.Region[i]]
		statuses[i] = workload.StatusNames[o.Status[i]]
	}
	err = orders.Writer().
		Int64("id", o.OrderID...).
		Int64("custkey", o.CustKey...).
		String("region", regions...).
		String("status", statuses...).
		Float64("amount", o.Amount...).
		Int64("day", o.OrderDay...).
		Close()
	if err != nil {
		return err
	}
	cust, err := e.CreateTable("customer", colstore.Schema{
		{Name: "ckey", Type: colstore.Int64},
		{Name: "segment", Type: colstore.String},
	})
	if err != nil {
		return err
	}
	cw := cust.Writer()
	for k := 0; k < nCust; k++ {
		seg := "RETAIL"
		if k%4 == 0 {
			seg = "WHOLESALE"
		}
		cw.Row(int64(k), seg)
	}
	if err := cw.Close(); err != nil {
		return err
	}
	if err := e.Seal("orders"); err != nil {
		return err
	}
	if err := e.Seal("customer"); err != nil {
		return err
	}
	return e.CreateIndex("orders", "id", "btree")
}
