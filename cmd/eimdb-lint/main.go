// Command eimdb-lint runs the project's static-analysis suite
// (internal/lint) over the module: standard-library-only analyzers that
// enforce the engine's determinism and energy-accounting invariants —
// no wall clocks or global math/rand in the deterministic packages, no
// map-iteration order leaking into results, counters mutated only
// through the metered APIs, executor goroutines only inside the
// lease-honoring pool helpers, flat-array hot structs, and an
// experiments registry that agrees with EXPERIMENTS.md and the
// committed bench baselines.
//
// Usage:
//
//	eimdb-lint [./...]          lint the whole module (the default)
//	eimdb-lint ./internal/exec  lint one package subtree
//	eimdb-lint -list            print the analyzers and exit
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// load or type-check failure.  Suppress a diagnostic in place with
// `//lint:allow <check>: <reason>` — the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fail(err)
		}
		dir, err = lint.FindModuleRoot(wd)
		if err != nil {
			fail(err)
		}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		fail(err)
	}
	unit, err := loader.LoadModule(lint.DefaultConfig())
	if err != nil {
		fail(err)
	}

	diags := lint.Run(unit, lint.All())
	diags = filterPatterns(diags, flag.Args(), dir)
	for _, d := range diags {
		fmt.Println(relativize(d, dir))
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "eimdb-lint: %d issue(s)\n", n)
		os.Exit(1)
	}
}

// filterPatterns narrows diagnostics to the requested package patterns.
// "./..." (or no pattern) keeps everything; "./internal/exec" keeps the
// subtree rooted there.
func filterPatterns(diags []lint.Diag, patterns []string, root string) []lint.Diag {
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "/...")
		if p == "." || p == "./" || p == "" {
			return diags
		}
		prefixes = append(prefixes, filepath.Clean(filepath.Join(root, p)))
	}
	if len(prefixes) == 0 {
		return diags
	}
	var out []lint.Diag
	for _, d := range diags {
		for _, pre := range prefixes {
			if d.Pos.Filename == pre || strings.HasPrefix(d.Pos.Filename, pre+string(filepath.Separator)) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// relativize prints a diagnostic with a root-relative path.
func relativize(d lint.Diag, root string) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "eimdb-lint:", err)
	os.Exit(2)
}
