// Command eimdb-serve exposes an energy-aware in-memory engine over
// HTTP: the online serving front end (internal/server) wired to a real
// monotonic clock and a demo orders table.
//
//	eimdb-serve -addr :8080 -rows 262144 -budget 4 -batch -arbitrate
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/query \
//	     -d '{"sql":"SELECT COUNT(*), SUM(amount) FROM orders WHERE custkey = 7"}'
//	curl -s localhost:8080/stats | jq .plan_cache
//
// Per-client energy budgets come from repeated -client flags:
//
//	eimdb-serve -client alice=2.5 -client bob=0.1
//	curl -s -X POST -H 'X-API-Key: bob' localhost:8080/query -d '{"sql":"..."}'
//
// Once a client's admitted plan estimates exceed its allowance, further
// queries are rejected 402-style until the server restarts.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/opt"
	"repro/internal/server"
)

// realClock implements server.Clock over the process monotonic clock.
// It lives here, outside internal/server, so the serving package stays
// under the determinism lint contract (no wall-clock reads).
type realClock struct{ epoch time.Time }

func (c realClock) Now() time.Duration { return time.Since(c.epoch) }

func (c realClock) Schedule(at time.Duration, wake func()) {
	d := at - c.Now()
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, wake)
}

// clientFlags collects repeated -client key=joules pairs.
type clientFlags map[string]energy.Joules

func (c clientFlags) String() string { return fmt.Sprintf("%d clients", len(c)) }

func (c clientFlags) Set(v string) error {
	key, allowance, ok := strings.Cut(v, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=joules, got %q", v)
	}
	j, err := strconv.ParseFloat(allowance, 64)
	if err != nil {
		return fmt.Errorf("bad allowance in %q: %w", v, err)
	}
	c[key] = energy.Joules(j)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 1<<18, "demo orders table cardinality")
	budget := flag.Int("budget", 4, "global core budget")
	queue := flag.Int("queue", 64, "admission queue depth (0 = unbounded)")
	batch := flag.Bool("batch", true, "shared-scan batching of queued lookalike queries")
	arbitrate := flag.Bool("arbitrate", true, "P-state DOP arbitration (false = naive FCFS)")
	objective := flag.String("objective", "min-energy", "default objective: min-time, min-energy, or min-edp")
	mergeAt := flag.Int("merge-delta-rows", 4096, "delta rows before a background merge is offered (0 = never)")
	clients := clientFlags{}
	flag.Var(clients, "client", "API key energy allowance as key=joules (repeatable)")
	flag.Parse()

	var obj opt.Objective
	switch *objective {
	case "min-time":
		obj = opt.MinTime
	case "min-energy":
		obj = opt.MinEnergy
	case "min-edp":
		obj = opt.MinEDP
	default:
		fmt.Fprintf(os.Stderr, "eimdb-serve: unknown objective %q\n", *objective)
		os.Exit(2)
	}

	eng, err := experiments.OrdersEngine(*rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eimdb-serve:", err)
		os.Exit(1)
	}
	srv := server.New(eng, server.Config{
		Sched: core.SchedulerConfig{
			Budget:     *budget,
			QueueDepth: *queue,
			BatchScans: *batch,
			Arbitrate:  *arbitrate,
		},
		Objective:      obj,
		Clients:        clients,
		MergeDeltaRows: *mergeAt,
	}, realClock{epoch: time.Now()})

	fmt.Printf("eimdb-serve: %d-row orders table, budget %d, listening on %s\n", *rows, *budget, *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "eimdb-serve:", err)
		os.Exit(1)
	}
}
