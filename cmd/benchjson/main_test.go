package main

import (
	"strings"
	"testing"
)

func trajectory(jop float64, names ...string) *File {
	f := &File{Schema: "bench-trajectory/v1"}
	for _, n := range names {
		f.Benchmarks = append(f.Benchmarks, Bench{
			Name:       n,
			Iterations: 1,
			Metrics:    map[string]float64{"J/op": jop, "bytes-touched/op": 1e6, "ns/op": 12345},
		})
	}
	return f
}

var gated = []string{"J/op", "bytes-touched/op"}

// TestDiffPassesWithinTolerance: identical runs and sub-tolerance drift
// both pass.
func TestDiffPassesWithinTolerance(t *testing.T) {
	base := trajectory(0.100, "BenchmarkA-2", "BenchmarkB-2")
	if report, failed := diff(base, trajectory(0.100, "BenchmarkA-2", "BenchmarkB-2"), gated, 0.01); failed {
		t.Fatalf("identical run failed:\n%s", report)
	}
	if report, failed := diff(base, trajectory(0.1005, "BenchmarkA-2", "BenchmarkB-2"), gated, 0.01); failed {
		t.Fatalf("+0.5%% drift within ±1%% failed:\n%s", report)
	}
}

// TestDiffFailsOnRegression is the CI gate's contract: an injected ≥1%
// J/op regression fails the comparison.
func TestDiffFailsOnRegression(t *testing.T) {
	base := trajectory(0.100, "BenchmarkA-2")
	report, failed := diff(base, trajectory(0.102, "BenchmarkA-2"), gated, 0.01)
	if !failed {
		t.Fatalf("+2%% J/op regression passed:\n%s", report)
	}
	if !strings.Contains(report, "FAIL BenchmarkA-2 J/op") {
		t.Fatalf("report does not name the regressed metric:\n%s", report)
	}
}

// TestDiffNotesImprovement: past-tolerance improvements warn about the
// stale baseline but do not fail the job.
func TestDiffNotesImprovement(t *testing.T) {
	base := trajectory(0.100, "BenchmarkA-2")
	report, failed := diff(base, trajectory(0.090, "BenchmarkA-2"), gated, 0.01)
	if failed {
		t.Fatalf("-10%% improvement failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "stale") {
		t.Fatalf("improvement not flagged:\n%s", report)
	}
}

// TestDiffFailsOnStructuralDrift: dropped, renamed, or novel benchmarks
// fail in either direction, and a vanished gated metric fails too.
func TestDiffFailsOnStructuralDrift(t *testing.T) {
	base := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	if report, failed := diff(base, trajectory(0.1, "BenchmarkA-2"), gated, 0.01); !failed {
		t.Fatalf("dropped benchmark passed:\n%s", report)
	}
	if report, failed := diff(base, trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2", "BenchmarkC-2"), gated, 0.01); !failed {
		t.Fatalf("novel benchmark passed (baseline must be refreshed explicitly):\n%s", report)
	}
	cur := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	delete(cur.Benchmarks[0].Metrics, "J/op")
	if report, failed := diff(base, cur, gated, 0.01); !failed {
		t.Fatalf("vanished gated metric passed:\n%s", report)
	}
	// The inverse hole: a baseline entry missing a gated metric the run
	// still emits would ungate that benchmark forever — it must fail.
	holed := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	delete(holed.Benchmarks[0].Metrics, "J/op")
	if report, failed := diff(holed, trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2"), gated, 0.01); !failed {
		t.Fatalf("holed baseline passed:\n%s", report)
	}
	// Absent from BOTH sides is a benchmark that never emits the metric.
	both := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	delete(both.Benchmarks[0].Metrics, "J/op")
	if report, failed := diff(both, cur, gated, 0.01); failed {
		t.Fatalf("metric absent from both sides failed:\n%s", report)
	}
}

// TestDiffZeroBaseline: a zero baseline value only accepts zero.
func TestDiffZeroBaseline(t *testing.T) {
	base := trajectory(0, "BenchmarkA-2")
	if report, failed := diff(base, trajectory(0, "BenchmarkA-2"), gated, 0.01); failed {
		t.Fatalf("zero == zero failed:\n%s", report)
	}
	if report, failed := diff(base, trajectory(0.001, "BenchmarkA-2"), gated, 0.01); !failed {
		t.Fatalf("nonzero against zero baseline passed:\n%s", report)
	}
}

// TestParseRoundTrip: the parser still reads real bench output with
// custom metrics.
func TestParseRoundTrip(t *testing.T) {
	const out = `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R)
BenchmarkE21MultiQuery/managed-2   1   398038744 ns/op   0.05236 J/op   14989856 bytes-touched/op
PASS
`
	f, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Goos != "linux" {
		t.Fatalf("parse lost data: %+v", f)
	}
	b := f.Benchmarks[0]
	if b.Metrics["J/op"] != 0.05236 || b.Metrics["bytes-touched/op"] != 14989856 {
		t.Fatalf("metrics lost: %+v", b.Metrics)
	}
}
