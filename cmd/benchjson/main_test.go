package main

import (
	"strings"
	"testing"
)

func trajectory(jop float64, names ...string) *File {
	f := &File{Schema: "bench-trajectory/v1"}
	for _, n := range names {
		f.Benchmarks = append(f.Benchmarks, Bench{
			Name:       n,
			Iterations: 1,
			Metrics:    map[string]float64{"J/op": jop, "bytes-touched/op": 1e6, "ns/op": 12345},
		})
	}
	return f
}

var gated = []string{"J/op", "bytes-touched/op"}

// TestDiffPassesWithinTolerance: identical runs and sub-tolerance drift
// both pass.
func TestDiffPassesWithinTolerance(t *testing.T) {
	base := trajectory(0.100, "BenchmarkA-2", "BenchmarkB-2")
	if report, _, failed := diff(base, trajectory(0.100, "BenchmarkA-2", "BenchmarkB-2"), gated, 0.01); failed {
		t.Fatalf("identical run failed:\n%s", report)
	}
	if report, _, failed := diff(base, trajectory(0.1005, "BenchmarkA-2", "BenchmarkB-2"), gated, 0.01); failed {
		t.Fatalf("+0.5%% drift within ±1%% failed:\n%s", report)
	}
}

// TestDiffFailsOnRegression is the CI gate's contract: an injected ≥1%
// J/op regression fails the comparison.
func TestDiffFailsOnRegression(t *testing.T) {
	base := trajectory(0.100, "BenchmarkA-2")
	report, _, failed := diff(base, trajectory(0.102, "BenchmarkA-2"), gated, 0.01)
	if !failed {
		t.Fatalf("+2%% J/op regression passed:\n%s", report)
	}
	if !strings.Contains(report, "FAIL BenchmarkA-2 J/op") {
		t.Fatalf("report does not name the regressed metric:\n%s", report)
	}
}

// TestDiffNotesImprovement: past-tolerance improvements warn about the
// stale baseline but do not fail the job.
func TestDiffNotesImprovement(t *testing.T) {
	base := trajectory(0.100, "BenchmarkA-2")
	report, _, failed := diff(base, trajectory(0.090, "BenchmarkA-2"), gated, 0.01)
	if failed {
		t.Fatalf("-10%% improvement failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "stale") {
		t.Fatalf("improvement not flagged:\n%s", report)
	}
}

// TestDiffFailsOnStructuralDrift: dropped, renamed, or novel benchmarks
// fail in either direction, and a vanished gated metric fails too.
func TestDiffFailsOnStructuralDrift(t *testing.T) {
	base := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	if report, _, failed := diff(base, trajectory(0.1, "BenchmarkA-2"), gated, 0.01); !failed {
		t.Fatalf("dropped benchmark passed:\n%s", report)
	}
	if report, _, failed := diff(base, trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2", "BenchmarkC-2"), gated, 0.01); !failed {
		t.Fatalf("novel benchmark passed (baseline must be refreshed explicitly):\n%s", report)
	}
	cur := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	delete(cur.Benchmarks[0].Metrics, "J/op")
	if report, _, failed := diff(base, cur, gated, 0.01); !failed {
		t.Fatalf("vanished gated metric passed:\n%s", report)
	}
	// The inverse hole: a baseline entry missing a gated metric the run
	// still emits would ungate that benchmark forever — it must fail.
	holed := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	delete(holed.Benchmarks[0].Metrics, "J/op")
	if report, _, failed := diff(holed, trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2"), gated, 0.01); !failed {
		t.Fatalf("holed baseline passed:\n%s", report)
	}
	// Absent from BOTH sides is a benchmark that never emits the metric.
	both := trajectory(0.1, "BenchmarkA-2", "BenchmarkB-2")
	delete(both.Benchmarks[0].Metrics, "J/op")
	if report, _, failed := diff(both, cur, gated, 0.01); failed {
		t.Fatalf("metric absent from both sides failed:\n%s", report)
	}
}

// TestDiffZeroBaseline: a zero baseline value only accepts zero.
func TestDiffZeroBaseline(t *testing.T) {
	base := trajectory(0, "BenchmarkA-2")
	if report, _, failed := diff(base, trajectory(0, "BenchmarkA-2"), gated, 0.01); failed {
		t.Fatalf("zero == zero failed:\n%s", report)
	}
	if report, _, failed := diff(base, trajectory(0.001, "BenchmarkA-2"), gated, 0.01); !failed {
		t.Fatalf("nonzero against zero baseline passed:\n%s", report)
	}
}

// TestParseRoundTrip: the parser still reads real bench output with
// custom metrics.
func TestParseRoundTrip(t *testing.T) {
	const out = `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R)
BenchmarkE21MultiQuery/managed-2   1   398038744 ns/op   0.05236 J/op   14989856 bytes-touched/op
PASS
`
	f, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Goos != "linux" {
		t.Fatalf("parse lost data: %+v", f)
	}
	b := f.Benchmarks[0]
	if b.Metrics["J/op"] != 0.05236 || b.Metrics["bytes-touched/op"] != 14989856 {
		t.Fatalf("metrics lost: %+v", b.Metrics)
	}
}

// TestAnnotateSyntheticRegression is the annotation contract: a
// synthetic +2% J/op regression must surface as a ::error workflow
// command carrying the baseline file and the benchmark/metric title,
// and a past-tolerance improvement as a ::warning.
func TestAnnotateSyntheticRegression(t *testing.T) {
	base := trajectory(0.100, "BenchmarkA-2", "BenchmarkB-2")
	cur := trajectory(0.102, "BenchmarkA-2", "BenchmarkB-2")
	cur.Benchmarks[1].Metrics["J/op"] = 0.090 // B improves past tolerance
	_, findings, failed := diff(base, cur, gated, 0.01)
	if !failed {
		t.Fatal("synthetic regression passed the gate")
	}
	var sb strings.Builder
	annotate(&sb, findings, "BENCH_PR10.json")
	out := sb.String()
	if !strings.Contains(out,
		"::error file=BENCH_PR10.json,title=bench gate%3A BenchmarkA-2 J/op::") {
		t.Fatalf("regression did not render as ::error with file and title:\n%s", out)
	}
	if !strings.Contains(out, "::warning file=BENCH_PR10.json,title=bench gate%3A BenchmarkB-2 J/op::") ||
		!strings.Contains(out, "baseline is stale") {
		t.Fatalf("stale-baseline improvement did not render as ::warning:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "::error ") && !strings.HasPrefix(line, "::warning ") {
			t.Fatalf("non-workflow-command line in annotation stream: %q", line)
		}
	}
}

// TestAnnotateStructuralFinding: whole-benchmark findings annotate
// without a metric in the title.
func TestAnnotateStructuralFinding(t *testing.T) {
	base := trajectory(0.1, "BenchmarkA-2", "BenchmarkGone-2")
	_, findings, failed := diff(base, trajectory(0.1, "BenchmarkA-2"), gated, 0.01)
	if !failed {
		t.Fatal("dropped benchmark passed")
	}
	var sb strings.Builder
	annotate(&sb, findings, "BENCH_PR10.json")
	if !strings.Contains(sb.String(),
		"::error file=BENCH_PR10.json,title=bench gate%3A BenchmarkGone-2::benchmark missing from this run") {
		t.Fatalf("structural finding not annotated:\n%s", sb.String())
	}
}

// TestWorkflowCommandEscaping: %, newlines, and property delimiters
// cannot smuggle extra commands or properties into the stream.
func TestWorkflowCommandEscaping(t *testing.T) {
	if got := ghData("50% worse\nnext"); got != "50%25 worse%0Anext" {
		t.Fatalf("ghData = %q", got)
	}
	if got := ghProp("a:b,c%d"); got != "a%3Ab%2Cc%25d" {
		t.Fatalf("ghProp = %q", got)
	}
	var sb strings.Builder
	annotate(&sb, []Finding{{Kind: "error", Bench: "B", Metric: "J/op", Msg: "x\n::error ::fake"}}, "base,file.json")
	out := sb.String()
	// Commands are recognized only at line start; the escaped payload must
	// leave exactly one physical line, whatever it contains.
	if strings.Count(out, "\n") != 1 || !strings.HasSuffix(out, "\n") {
		t.Fatalf("payload smuggled a second line:\n%q", out)
	}
	if strings.Contains(out, "\n::error") || strings.Contains(strings.TrimPrefix(out, "::error"), "\n::") {
		t.Fatalf("payload smuggled a second command:\n%q", out)
	}
	if !strings.Contains(out, "file=base%2Cfile.json,") {
		t.Fatalf("baseline path delimiters unescaped:\n%q", out)
	}
}
