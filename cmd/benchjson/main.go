// Command benchjson converts `go test -bench` output into the committed
// benchmark-trajectory JSON (BENCH_PR3.json and successors): one record
// per benchmark with every reported metric (ns/op, MB/s, and the custom
// J/op and bytes-touched/op metrics the root benchmarks emit), so CI runs
// leave comparable data points instead of scrolled-away logs.
//
// Usage:
//
//	go test -run '^$' -bench <pattern> -benchtime=1x -count=1 . | \
//	    go run ./cmd/benchjson -out BENCH_PR3.json
//
// Timing noise is expected (CI runners are shared, this repo's container
// is single-CPU): the tool never judges values, it only records them.
// A run fails only if the benchmark binary itself failed, which go test
// signals via its exit code before this tool runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result: the -N suffix (GOMAXPROCS) is kept in
// the name so runs on differently shaped machines stay distinguishable.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the committed JSON shape.
type File struct {
	Schema     string  `json:"schema"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench output to read (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	file, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(file.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parse scans bench output: header lines (goos/goarch/cpu) fill the file
// metadata, "Benchmark..." lines become records.  The line grammar after
// the name and iteration count is value/unit pairs, which covers ns/op,
// MB/s, B/op, allocs/op, and all ReportMetric units.
func parse(r io.Reader) (*File, error) {
	file := &File{Schema: "bench-trajectory/v1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			file.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			file.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			file.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad metric value %q", line, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		file.Benchmarks = append(file.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(file.Benchmarks, func(i, j int) bool {
		return file.Benchmarks[i].Name < file.Benchmarks[j].Name
	})
	return file, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
