// Command benchjson converts `go test -bench` output into the committed
// benchmark-trajectory JSON (BENCH_PR3.json and successors): one record
// per benchmark with every reported metric (ns/op, MB/s, and the custom
// J/op and bytes-touched/op metrics the root benchmarks emit), so CI runs
// leave comparable data points instead of scrolled-away logs.
//
// Usage:
//
//	go test -run '^$' -bench <pattern> -benchtime=1x -count=1 . | \
//	    go run ./cmd/benchjson -out BENCH_CI.json \
//	        -baseline BENCH_PR5.json -tol 0.01 -report bench-diff.txt
//
// Timing noise is expected (CI runners are shared, this repo's container
// is single-CPU), so wall-clock metrics (ns/op, MB/s) are recorded but
// never judged.  The DETERMINISTIC custom metrics — J/op and
// bytes-touched/op are pure functions of the energy model over seeded
// workloads — are a different story: with -baseline the tool compares
// them against the committed file and exits nonzero when a benchmark
// regresses past -tol (relative), when a gated metric disappears, or
// when the benchmark sets diverge.  Improvements past the tolerance
// only warn: they mean the committed baseline is stale, not that the
// build is broken.
//
// Under GitHub Actions (or with -annotate), every gate failure also
// prints a ::error workflow command and every stale-baseline
// improvement a ::warning, both carrying file=<baseline> and the
// benchmark/metric in the title — so regressions surface as inline
// annotations on the Actions summary instead of only inside a scrolled
// step log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result: the -N suffix (GOMAXPROCS) is kept in
// the name so runs on differently shaped machines stay distinguishable.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the committed JSON shape.
type File struct {
	Schema     string  `json:"schema"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench output to read (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	baseline := flag.String("baseline", "", "committed trajectory JSON to gate against")
	tol := flag.Float64("tol", 0.01, "relative tolerance for gated metrics")
	metrics := flag.String("metrics", "J/op,bytes-touched/op",
		"comma-separated deterministic metrics to gate (wall-clock metrics are never judged)")
	reportPath := flag.String("report", "", "file to write the diff report to (always printed on failure)")
	annotateFlag := flag.Bool("annotate", os.Getenv("GITHUB_ACTIONS") == "true",
		"emit GitHub Actions ::error/::warning workflow commands for gate findings (default: on under GITHUB_ACTIONS)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	file, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(file.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	report, findings, failed := diff(base, file, splitMetrics(*metrics), *tol)
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(report), 0o644); err != nil {
			fatal(err)
		}
	}
	// stderr, not stdout: with -out omitted, stdout is the JSON stream
	// and appending the report there would corrupt a piped consumer.
	fmt.Fprint(os.Stderr, report)
	if *annotateFlag {
		// The runner recognizes workflow commands on either stream; use
		// stdout when it is free, stderr when it carries the JSON.
		dst := os.Stdout
		if *out == "" {
			dst = os.Stderr
		}
		annotate(dst, findings, *baseline)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: deterministic metrics regressed against", *baseline)
		os.Exit(1)
	}
}

// Finding is one gate outcome worth surfacing outside the text report: a
// regression or structural failure (Kind "error") or a past-tolerance
// improvement that means the committed baseline is stale (Kind
// "warning").
type Finding struct {
	Kind   string // "error" | "warning"
	Bench  string
	Metric string // empty for structural findings (whole benchmark)
	Msg    string
}

// annotate renders findings as GitHub Actions workflow commands.  The
// file property points at the committed baseline — the file a reviewer
// regenerates to acknowledge an intended shift — and the title names the
// benchmark and metric so the annotation reads standalone on the run
// summary.
func annotate(w io.Writer, findings []Finding, baseline string) {
	for _, f := range findings {
		title := "bench gate: " + f.Bench
		if f.Metric != "" {
			title += " " + f.Metric
		}
		fmt.Fprintf(w, "::%s file=%s,title=%s::%s\n",
			f.Kind, ghProp(baseline), ghProp(title), ghData(f.Msg))
	}
}

// ghData escapes a workflow-command data payload (%, CR, LF).
func ghData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghProp escapes a workflow-command property value (data escapes plus
// the property delimiters).
func ghProp(s string) string {
	s = ghData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// load reads a committed trajectory file.
func load(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func splitMetrics(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// diff gates the current run against the baseline: the benchmark sets
// must match exactly (a silently dropped or renamed benchmark is a hole
// in the trajectory), and every gated metric present in the baseline
// must be present now and within tol relatively.  Regressions fail;
// improvements past tol only flag the baseline as stale.  Every FAIL
// line and every stale-baseline note also becomes a Finding, the feed
// for the GitHub Actions annotations.
func diff(base, cur *File, gated []string, tol float64) (string, []Finding, bool) {
	var b strings.Builder
	var findings []Finding
	failed := false
	fail := func(bench, metric, msg string) {
		if metric != "" {
			fmt.Fprintf(&b, "FAIL %s %s: %s\n", bench, metric, msg)
		} else {
			fmt.Fprintf(&b, "FAIL %s: %s\n", bench, msg)
		}
		findings = append(findings, Finding{Kind: "error", Bench: bench, Metric: metric, Msg: msg})
		failed = true
	}
	curBy := make(map[string]Bench, len(cur.Benchmarks))
	for _, bench := range cur.Benchmarks {
		curBy[bench.Name] = bench
	}
	baseBy := make(map[string]Bench, len(base.Benchmarks))
	for _, bench := range base.Benchmarks {
		baseBy[bench.Name] = bench
	}
	fmt.Fprintf(&b, "benchjson diff: %d baseline / %d current benchmarks, tol ±%.1f%%, gated: %s\n",
		len(base.Benchmarks), len(cur.Benchmarks), tol*100, strings.Join(gated, " "))
	for _, bench := range base.Benchmarks {
		if _, ok := curBy[bench.Name]; !ok {
			fail(bench.Name, "", "benchmark missing from this run")
		}
	}
	for _, bench := range cur.Benchmarks {
		if _, ok := baseBy[bench.Name]; !ok {
			fail(bench.Name, "", "benchmark not in baseline (refresh the committed file)")
		}
	}
	for _, bench := range base.Benchmarks {
		now, ok := curBy[bench.Name]
		if !ok {
			continue
		}
		for _, m := range gated {
			want, inBase := bench.Metrics[m]
			got, inCur := now.Metrics[m]
			if !inBase {
				// A baseline entry without the gated metric would let
				// every future regression of it ship silently — refuse
				// the hole rather than skip it.  (Absent from both
				// sides = a benchmark that never emits the metric.)
				if inCur {
					fail(bench.Name, m, "metric absent from baseline (refresh the committed file)")
				}
				continue
			}
			if !inCur {
				fail(bench.Name, m, fmt.Sprintf("metric disappeared (baseline %g)", want))
				continue
			}
			switch {
			case got > want*(1+tol):
				fail(bench.Name, m, fmt.Sprintf("%g -> %g (+%.2f%%)", want, got, rel(want, got)))
			case got < want*(1-tol):
				msg := fmt.Sprintf("%g -> %g (%.2f%%): improvement, baseline is stale", want, got, rel(want, got))
				fmt.Fprintf(&b, "note %s %s: %s\n", bench.Name, m, msg)
				findings = append(findings, Finding{Kind: "warning", Bench: bench.Name, Metric: m, Msg: msg})
			default:
				fmt.Fprintf(&b, "ok   %s %s: %g -> %g\n", bench.Name, m, want, got)
			}
		}
	}
	if !failed {
		fmt.Fprintln(&b, "PASS: no deterministic-metric regressions")
	}
	return b.String(), findings, failed
}

// rel returns the signed relative change in percent.
func rel(want, got float64) float64 {
	if want == 0 {
		return 0
	}
	return (got - want) / want * 100
}

// parse scans bench output: header lines (goos/goarch/cpu) fill the file
// metadata, "Benchmark..." lines become records.  The line grammar after
// the name and iteration count is value/unit pairs, which covers ns/op,
// MB/s, B/op, allocs/op, and all ReportMetric units.
func parse(r io.Reader) (*File, error) {
	file := &File{Schema: "bench-trajectory/v1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			file.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			file.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			file.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad metric value %q", line, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		file.Benchmarks = append(file.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(file.Benchmarks, func(i, j int) bool {
		return file.Benchmarks[i].Name < file.Benchmarks[j].Name
	})
	return file, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
