// Command eimdb-bench regenerates every table and series recorded in
// EXPERIMENTS.md.  Each experiment (E1–E24) corresponds to a claim of the
// paper; run them all or one at a time:
//
//	eimdb-bench              # run everything
//	eimdb-bench -exp E3      # one experiment
//	eimdb-bench -list        # list experiments with their claims
//
// It is also the open-loop workload driver for the multi-query
// scheduler: -replay queues a Zipf point-query storm at a configurable
// offered QPS and drains it through core.Engine's scheduler, printing
// the fleet schedule and energy books.
//
//	eimdb-bench -replay -qps 100000 -n 200 -budget 4 -batch -arbitrate
//	eimdb-bench -replay -batch=false -arbitrate=false   # naive baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E24) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")

	replay := flag.Bool("replay", false, "open-loop workload driver mode")
	qps := flag.Float64("qps", 100_000, "replay: offered arrival rate (queries/second)")
	nq := flag.Int("n", 200, "replay: number of queries in the storm")
	rows := flag.Int("rows", 1<<18, "replay: orders table cardinality")
	zipf := flag.Float64("zipf", 1.3, "replay: key-skew exponent (hotter > 1)")
	ncust := flag.Int("ncust", 40, "replay: distinct customer keys drawn")
	budget := flag.Int("budget", 4, "replay: global core budget")
	queue := flag.Int("queue", 0, "replay: admission queue depth (0 = unbounded)")
	batch := flag.Bool("batch", true, "replay: shared-scan batching of lookalike queries")
	arbitrate := flag.Bool("arbitrate", true, "replay: P-state DOP arbitration (false = naive all-cores FCFS)")
	seed := flag.Uint64("seed", 17, "replay: workload seed")
	flag.Parse()

	if *replay {
		if err := runReplay(*rows, *nq, *qps, *zipf, *ncust, *seed, core.SchedulerConfig{
			Budget: *budget, QueueDepth: *queue, BatchScans: *batch, Arbitrate: *arbitrate,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("claim: %s\n", e.Claim)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}

// runReplay queues the storm and drains it through the scheduler.  The
// arrival script is the shared workload.Script form — the same bytes
// E21 submits and the serving front end (eimdb-serve, E22) replays, so
// the batch driver and the online server exercise one workload format.
func runReplay(rows, nq int, qps, zipfS float64, ncust int, seed uint64, cfg core.SchedulerConfig) error {
	eng, err := experiments.OrdersEngine(rows)
	if err != nil {
		return err
	}
	if err := experiments.SubmitStorm(eng, nq, qps, zipfS, ncust, seed); err != nil {
		return err
	}
	fmt.Printf("replay: %d queries over %d rows, zipf %.2f over %d keys, offered %.0f q/s\n",
		nq, rows, zipfS, ncust, qps)
	fmt.Printf("sched:  budget=%d queue-depth=%d batch=%v arbitrate=%v\n",
		cfg.Budget, cfg.QueueDepth, cfg.BatchScans, cfg.Arbitrate)

	rep, err := eng.Drain(cfg)
	if err != nil {
		return err
	}
	f := rep.Fleet
	fmt.Printf("\ncompleted %d, rejected %d, shared groups %d (+%d riders)\n",
		f.Completed, f.Rejected, f.SharedGroups, f.SharedTasks)
	fmt.Printf("latency: avg %v, p95 %v, makespan %v\n",
		f.AvgLatency.Round(10*time.Microsecond), f.P95Latency.Round(10*time.Microsecond),
		f.Makespan.Round(10*time.Microsecond))
	fmt.Printf("energy:  fleet %v (%v/query), dynamic %v + static %v, batching saved %v\n",
		rep.FleetEnergy(), rep.EnergyPerQuery(), rep.FleetDynamic, f.Static, rep.SavedDynamic)
	fmt.Printf("work:    physical %.1f MB DRAM vs %.1f MB attributed\n",
		float64(rep.Physical.BytesReadDRAM)/1e6, float64(rep.Attributed.BytesReadDRAM)/1e6)
	return nil
}
