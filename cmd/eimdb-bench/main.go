// Command eimdb-bench regenerates every table and series recorded in
// EXPERIMENTS.md.  Each experiment (E1–E18) corresponds to a claim of the
// paper; run them all or one at a time:
//
//	eimdb-bench              # run everything
//	eimdb-bench -exp E3      # one experiment
//	eimdb-bench -list        # list experiments with their claims
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E18) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("claim: %s\n", e.Claim)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}
