// Command eimdb-gen emits the repository's deterministic synthetic
// datasets as CSV, for loading into other systems or eyeballing:
//
//	eimdb-gen -dataset orders  -n 100000 -seed 42 > orders.csv
//	eimdb-gen -dataset sensor  -n 100000 -devices 64 > sensor.csv
//	eimdb-gen -dataset clicks  -n 100000 > clicks.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "orders", "orders | sensor | clicks")
	n := flag.Int("n", 10000, "rows to generate")
	seed := flag.Uint64("seed", 42, "generator seed")
	nCust := flag.Int("customers", 1000, "orders: distinct customers")
	skew := flag.Float64("skew", 1.1, "orders: customer Zipf exponent")
	devices := flag.Int("devices", 64, "sensor: device count")
	users := flag.Int("users", 5000, "clicks: distinct users")
	urls := flag.Int("urls", 20000, "clicks: distinct URLs")
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	var err error
	switch *dataset {
	case "orders":
		err = writeOrders(w, *seed, *n, *nCust, *skew)
	case "sensor":
		err = writeSensor(w, *seed, *n, *devices)
	case "clicks":
		err = writeClicks(w, *seed, *n, *users, *urls)
	default:
		err = fmt.Errorf("unknown dataset %q (want orders, sensor, or clicks)", *dataset)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eimdb-gen:", err)
		os.Exit(1)
	}
}

func writeOrders(w *csv.Writer, seed uint64, n, nCust int, skew float64) error {
	o := workload.GenOrders(seed, n, nCust, skew)
	if err := w.Write([]string{"id", "custkey", "region", "status", "amount", "day"}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rec := []string{
			strconv.FormatInt(o.OrderID[i], 10),
			strconv.FormatInt(o.CustKey[i], 10),
			workload.RegionNames[o.Region[i]],
			workload.StatusNames[o.Status[i]],
			strconv.FormatFloat(o.Amount[i], 'f', 2, 64),
			strconv.FormatInt(o.OrderDay[i], 10),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func writeSensor(w *csv.Writer, seed uint64, n, devices int) error {
	s := workload.GenSensor(seed, n, devices, 1_700_000_000)
	if err := w.Write([]string{"device", "ts", "value"}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rec := []string{
			strconv.FormatInt(s.Device[i], 10),
			strconv.FormatInt(s.TS[i], 10),
			strconv.FormatFloat(s.Value[i], 'f', 4, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func writeClicks(w *csv.Writer, seed uint64, n, users, urls int) error {
	c := workload.GenClicks(seed, n, users, urls)
	if err := w.Write([]string{"user", "url", "ts", "dwell_ms"}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rec := []string{
			strconv.FormatInt(c.User[i], 10),
			strconv.FormatInt(c.URL[i], 10),
			strconv.FormatInt(c.TS[i], 10),
			strconv.FormatInt(c.Dur[i], 10),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
