package repro

// One benchmark per experiment in EXPERIMENTS.md (the paper has no
// numbered tables; each E-id maps to a quantified claim or to Figure 2).
// cmd/eimdb-bench prints the full experiment tables; these benches make
// the same code paths measurable under `go test -bench=. -benchmem`.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/opt"
	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/vec"
	"repro/internal/wal"
	"repro/internal/workload"

	"repro/internal/energy"
)

// BenchmarkE1EnergyConstraint regenerates the Figure 2 trade-off curve.
func BenchmarkE1EnergyConstraint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.E1Curve()
		if len(points) == 0 {
			b.Fatal("empty curve")
		}
	}
}

// BenchmarkE2AccessPath regenerates the scan-vs-index selectivity sweep.
func BenchmarkE2AccessPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E2Sweep(200_000)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Winner != "index" {
			b.Fatal("crossover shape lost")
		}
	}
}

// BenchmarkE3CompressVsSend regenerates the codec decision matrix.
func BenchmarkE3CompressVsSend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3Matrix(200_000)
	}
}

// BenchmarkE4SyncScaling runs the five synchronization schemes at the
// host's core count (the Shore-MT-style scaling probe).
func BenchmarkE4SyncScaling(b *testing.B) {
	for _, s := range []txn.Scheme{txn.GlobalLock, txn.ShardedLock, txn.AtomicAdd, txn.HTMSim, txn.Partitioned} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				txn.RunAggregation(s, 8, 400_000, 256, 1.1, 7)
			}
		})
	}
}

// BenchmarkE5IdlePolicies simulates the three idle-management policies
// across the load sweep.
func BenchmarkE5IdlePolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5Sweep()
	}
}

// BenchmarkE6Tiering regenerates the placement comparison.
func BenchmarkE6Tiering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6Placements()
	}
}

// BenchmarkE7ScanKernels measures the three scan kernels directly; this
// is the repository's SIMD-substitute figure.  Throughput is reported as
// bytes of logical int64 data filtered per second; bytes-touched/op is
// the physical DRAM traffic the kernel streams and J/op its energy-model
// price (the same per-byte/per-instruction formulas colstore charges).
func BenchmarkE7ScanKernels(b *testing.B) {
	const n = 1 << 20
	model := energy.DefaultModel()
	vals := workload.UniformInts(1, n, 1<<16)
	codes := make([]uint64, n)
	for i, v := range vals {
		codes[i] = uint64(v)
	}
	packed := vec.NewPacked(codes, 16)
	c := int64(1 << 15) // 50% selectivity: worst case for branching
	report := func(b *testing.B, work energy.Counters) {
		b.ReportMetric(float64(work.BytesReadDRAM), "bytes-touched/op")
		j := model.DynamicEnergy(work, model.Core.MaxPState()).Total()
		b.ReportMetric(float64(j), "J/op")
	}
	b.Run("branching", func(b *testing.B) {
		b.SetBytes(n * 8)
		report(b, energy.Counters{BytesReadDRAM: n * 8, Instructions: n * 3})
		for i := 0; i < b.N; i++ {
			out := vec.NewBitvec(n)
			vec.ScanBranching(vals, vec.LT, c, out)
		}
	})
	b.Run("predicated", func(b *testing.B) {
		b.SetBytes(n * 8)
		report(b, energy.Counters{BytesReadDRAM: n * 8, Instructions: n * 3})
		for i := 0; i < b.N; i++ {
			out := vec.NewBitvec(n)
			vec.ScanPredicated(vals, vec.LT, c, out)
		}
	})
	b.Run("word-parallel", func(b *testing.B) {
		b.SetBytes(n * 8)
		words := uint64(packed.WordCount())
		report(b, energy.Counters{BytesReadDRAM: words * 8, Instructions: words * 6})
		for i := 0; i < b.N; i++ {
			out := vec.NewBitvec(n)
			packed.Scan(vec.LT, uint64(c), out)
		}
	})
}

// BenchmarkE8Robustness regenerates the failure-policy sweep.
func BenchmarkE8Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8Sweep()
	}
}

// BenchmarkE9ReliabilityQoS measures group commit per QoS level.
func BenchmarkE9ReliabilityQoS(b *testing.B) {
	cfg := wal.DefaultConfig()
	gaps := workload.Poisson(3, 5000, 100_000)
	arrivals := make([]time.Duration, len(gaps))
	var at time.Duration
	for i, g := range gaps {
		at += g
		arrivals[i] = at
	}
	for _, level := range []wal.Level{wal.Volatile, wal.Local, wal.Repl2, wal.Repl3} {
		b.Run(level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wal.SimulateGroupCommit(cfg, arrivals, 96, 64*time.Microsecond, level)
			}
		})
	}
}

// BenchmarkE10ManyTables measures greedy join ordering at 10,000 tables
// (the paper's ">10.000 tables in a query" requirement).
func BenchmarkE10ManyTables(b *testing.B) {
	n := 10_000
	tables := make([]opt.JoinTable, n)
	rng := workload.NewRNG(5)
	for i := range tables {
		tables[i] = opt.JoinTable{Name: "t", Rows: float64(100 + rng.Intn(1_000_000))}
	}
	g := opt.NewJoinGraph(tables)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, 1e-4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order, _, exact := g.Order()
		if exact || len(order) != n {
			b.Fatal("wrong ordering path")
		}
	}
}

// BenchmarkE11Elasticity simulates the diurnal trace comparison.
func BenchmarkE11Elasticity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E11Run(6000)
	}
}

// BenchmarkE12NeedToKnow measures eager vs deferred index maintenance.
func BenchmarkE12NeedToKnow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E12Sweep(20_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Conversations measures branched vs single-truth writes.
func BenchmarkE13Conversations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E13Run(4, 20_000)
	}
}

// BenchmarkE14HybridLanguage measures both language fronts end to end.
func BenchmarkE14HybridLanguage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E14Check(50_000)
		if err != nil {
			b.Fatal(err)
		}
		if !res.PlansEqual {
			b.Fatal("plans diverged")
		}
	}
}

// BenchmarkE15XPUOffload prices the offload decision matrix (extension).
func BenchmarkE15XPUOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.E15Sweep()
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkE16NUMA evaluates NUMA schedules and sharing modes
// (extension).
func BenchmarkE16NUMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E16Schedules()
		experiments.E16Sharing()
	}
}

// BenchmarkE17Distributed runs the distributed aggregation strategies
// (extension).
func BenchmarkE17Distributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E17Sweep(4, 40_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18ParallelDOP runs the E18 sweep (time/energy across DOP
// 1/2/4/8) at reduced scale.
func BenchmarkE18ParallelDOP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E18Sweep(1<<19, []int{1, 2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelScanAgg is the morsel-executor acceptance benchmark:
// a 1M-row grouped aggregation (filtered parallel scan feeding the
// partial-aggregating HashAgg) at fixed degrees of parallelism.  On
// multi-core hardware dop-4 should finish in under half of dop-1's
// wall clock; results and charged counters are byte-identical at every
// DOP (asserted by TestParallelAggDOPInvariant under -race).
func BenchmarkParallelScanAgg(b *testing.B) {
	const rows = 1 << 20
	eng, err := experiments.OrdersEngine(rows)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := eng.Catalog().Table("orders")
	if err != nil {
		b.Fatal(err)
	}
	plan := &exec.HashAgg{
		Child: &exec.ParallelScan{
			Table:  tab,
			Select: []string{"region", "amount"},
			Preds:  []expr.Pred{{Col: "custkey", Op: vec.LT, Val: expr.IntVal(int64(rows/100+10) * 4 / 5)}},
		},
		GroupBy: []string{"region"},
		Aggs:    []expr.AggSpec{{Func: expr.AggSum, Col: "amount", As: "rev"}},
	}
	model := eng.Model()
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop-%d", dop), func(b *testing.B) {
			b.SetBytes(rows * 8)
			var work energy.Counters
			for i := 0; i < b.N; i++ {
				ctx := exec.NewCtx()
				ctx.Parallelism = dop
				if _, err := plan.Run(ctx); err != nil {
					b.Fatal(err)
				}
				work = ctx.Meter.Snapshot()
			}
			// Counters are DOP-invariant, so the last iteration's meter
			// prices any of them.
			j := model.DynamicEnergy(work, model.Core.MaxPState()).Total()
			b.ReportMetric(float64(j), "J/op")
			b.ReportMetric(float64(work.BytesReadDRAM+work.BytesWrittenDRAM), "bytes-touched/op")
		})
	}
}

// BenchmarkE19CompressedScan scans 1M-row columns of each E19 data shape
// raw (unsealed) and sealed into the advisor-chosen compressed layout, at
// 50% selectivity.  J/op and bytes-touched/op report the energy model's
// view of one scan: the compressed arm must stream strictly fewer bytes
// (TestE19Shape asserts it; this makes the gap measurable over time).
func BenchmarkE19CompressedScan(b *testing.B) {
	const n = 1 << 20
	model := energy.DefaultModel()
	for _, shape := range experiments.E19BenchShapes(n) {
		for _, arm := range []string{"raw", "compressed"} {
			col := colstore.NewIntColumn()
			col.AppendSlice(shape.Vals)
			if arm == "compressed" {
				col.Seal()
			}
			cut := shape.Cut
			b.Run(shape.Name+"/"+arm, func(b *testing.B) {
				b.SetBytes(n * 8)
				var work energy.Counters
				for i := 0; i < b.N; i++ {
					out := vec.NewBitvec(n)
					work = col.ScanRows(vec.LT, cut, 0, n, out)
				}
				j := model.DynamicEnergy(work, model.Core.MaxPState()).Total()
				b.ReportMetric(float64(j), "J/op")
				b.ReportMetric(float64(work.BytesReadDRAM), "bytes-touched/op")
			})
		}
	}
}

// BenchmarkE20PartitionedJoin joins a 1M-row sales table to a 100K-row
// customer dimension on a string key, planned two ways: over raw tables
// (serial string-hashing join) and over sealed tables (radix-partitioned
// morsel-parallel join on dictionary codes).  J/op and bytes-touched/op
// report the energy model's view of one whole plan; the dict arm must
// stream strictly fewer bytes (TestE20Shape asserts it; this makes the
// gap measurable over time).  Wall times on the 1-CPU CI runner measure
// the code path, not parallel speedup — DOP invariance is the tested
// contract.
func BenchmarkE20PartitionedJoin(b *testing.B) {
	const nFact, nDim = 1 << 20, 100_000
	model := energy.DefaultModel()
	for _, arm := range []string{"raw", "dict"} {
		node, _, err := experiments.E20Plan(nFact, nDim, arm == "dict")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(arm, func(b *testing.B) {
			b.SetBytes(nFact * 8)
			var work energy.Counters
			for i := 0; i < b.N; i++ {
				ctx := exec.NewCtx()
				ctx.Parallelism = 2
				rel, err := node.Run(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if rel.N == 0 {
					b.Fatal("join produced no rows")
				}
				work = ctx.Meter.Snapshot()
			}
			j := model.DynamicEnergy(work, model.Core.MaxPState()).Total()
			b.ReportMetric(float64(j), "J/op")
			b.ReportMetric(float64(work.BytesReadDRAM), "bytes-touched/op")
		})
	}
}

// BenchmarkE21MultiQuery replays the E21 open-loop Zipf point-query
// storm (48 queries, 100k QPS offered) through both scheduler arms at a
// 2-core budget.  J/op is the modeled fleet energy of the whole storm
// and bytes-touched/op the DRAM bytes it physically streamed — both are
// deterministic (virtual-time schedule over seeded workload counters),
// so the CI bench gate diffs them against the committed baseline; the
// managed arm's numbers must sit strictly below the naive arm's
// (TestE21Shape asserts it).
func BenchmarkE21MultiQuery(b *testing.B) {
	for _, arm := range []string{"naive", "managed"} {
		b.Run(arm, func(b *testing.B) {
			var row experiments.E21Row
			for i := 0; i < b.N; i++ {
				rows, err := experiments.E21Sweep(1<<18, 48, 100_000, []int{2}, arm)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Arm == arm {
						row = r
					}
				}
			}
			if row.Completed == 0 {
				b.Fatal("storm completed nothing")
			}
			b.ReportMetric(float64(row.FleetJ), "J/op")
			b.ReportMetric(float64(row.PhysBytes), "bytes-touched/op")
		})
	}
}

// BenchmarkE22Serving replays the E22 arrival script (48 queries,
// 100k QPS offered) through the full serving front end — plan cache,
// admission, shared-scan batching, virtual completion — at a 2-core
// budget.  J/op is the batching arm's modeled fleet energy and
// bytes-touched/op its physically streamed DRAM bytes; both are
// deterministic (simulated clock over a seeded script), so the CI
// bench gate diffs them against the committed baseline.
func BenchmarkE22Serving(b *testing.B) {
	var row experiments.E22Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E22Sweep(1<<18, 48, 100_000, []int{2})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Batch {
				row = r
			}
		}
	}
	if row.Completed == 0 {
		b.Fatal("storm completed nothing")
	}
	b.ReportMetric(float64(row.FleetJ), "J/op")
	b.ReportMetric(float64(row.PhysBytes), "bytes-touched/op")
}

// BenchmarkE23WritableDelta runs the E23 write-path sweep at a 2-way
// probe: bulk-load, 4096 DML statements into the delta, probe, then the
// scheduler-admitted min-energy background merge, probe again.
// bytes-touched/op is the post-merge probe's DRAM traffic (what the
// re-seal buys), delta-bytes-touched/op the pre-merge probe over
// main+delta, and merge-J the merge ticket's billed energy; all three
// are deterministic, so the CI bench gate diffs them against the
// committed baseline.
func BenchmarkE23WritableDelta(b *testing.B) {
	var res *experiments.E23Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.E23Sweep(1<<18, 4096, []int{2})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Rows) == 0 || !res.MergeDeferred {
		b.Fatalf("merge did not defer to foreground traffic: %+v", res)
	}
	r := res.Rows[0]
	b.ReportMetric(float64(r.PostBytes), "bytes-touched/op")
	b.ReportMetric(float64(r.PreBytes), "delta-bytes-touched/op")
	b.ReportMetric(float64(res.MergeJ), "merge-J")
}

// BenchmarkE24FusedPipeline runs the headline fused-vs-unfused arms
// (RLE-grouped aggregate, dictionary-grouped aggregate, code-domain
// probe, all at 50% selectivity) over a 1M-row fact table at a 2-way
// morsel pool.  J/op and bytes-touched/op report the energy model's view
// of one whole plan; the fused arm must sit strictly below its unfused
// control on both (TestE24Shape asserts it; this makes the gap
// measurable over time).  Wall times on the 1-CPU CI runner measure the
// code path, not parallel speedup — DOP invariance is the tested
// contract.
func BenchmarkE24FusedPipeline(b *testing.B) {
	const n = 1 << 20
	model := energy.DefaultModel()
	arms, err := experiments.E24BenchArms(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range arms {
		for _, path := range []struct {
			name string
			node exec.Node
		}{{"fused", arm.Fused}, {"unfused", arm.Unfused}} {
			b.Run(arm.Name+"/"+path.name, func(b *testing.B) {
				b.SetBytes(n * 8)
				var work energy.Counters
				for i := 0; i < b.N; i++ {
					ctx := exec.NewCtx()
					ctx.Parallelism = 2
					rel, err := path.node.Run(ctx)
					if err != nil {
						b.Fatal(err)
					}
					if rel.N == 0 {
						b.Fatal("fused pipeline produced no rows")
					}
					work = ctx.Meter.Snapshot()
				}
				j := model.DynamicEnergy(work, model.Core.MaxPState()).Total()
				b.ReportMetric(float64(j), "J/op")
				b.ReportMetric(float64(work.BytesReadDRAM), "bytes-touched/op")
			})
		}
	}
}

// BenchmarkE25ShardedScan runs the E25 value-range-sharding sweep:
// skewed point probe over the flat layout and over 1/4/16 shards (byte
// identity enforced inside the sweep), then the scheduler-admitted
// min-energy background rebalance under a write burst.
// bytes-touched/op and J/op report the finest cut's probe — what zone
// pruning plus narrower per-shard packing buy over the flat scan — and
// rebalance-J the rebalance ticket's billed energy.  All three are
// deterministic simulated-model metrics, so the CI bench gate diffs
// them against the committed baseline; wall times on the 1-CPU runner
// measure the code path, never parallel speedup.
func BenchmarkE25ShardedScan(b *testing.B) {
	var res *experiments.E25Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.E25Sweep(1<<18, []int{1, 4, 16}, []int{2})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Rows) == 0 || !res.RebalanceDeferred {
		b.Fatalf("rebalance did not defer to foreground traffic: %+v", res)
	}
	r := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(r.BytesTouched), "bytes-touched/op")
	b.ReportMetric(float64(r.J), "J/op")
	b.ReportMetric(float64(res.RebalanceJ), "rebalance-J")
}

// BenchmarkScheduler measures the discrete-event scheduler core (the
// substrate under E1/E5).
func BenchmarkScheduler(b *testing.B) {
	model := energy.DefaultModel()
	jobs := sched.MakeJobs(workload.Poisson(9, 2000, 500),
		energy.Counters{Instructions: 5_000_000, BytesReadDRAM: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Simulate(sched.Config{Cores: 16, Model: model, Policy: sched.RaceToIdle, MemGB: 32}, jobs)
	}
}
